package enumerate

import (
	"testing"

	"rex/internal/kbgen"
)

// enumerateAllocBudget bounds the steady-state allocations of one full
// sample-KB enumeration (prioritized paths + pruned union). The pooled
// state makes frontier growth, grouping and merge candidates free; what
// remains is the returned explanation set itself (patterns, instance
// blocks, result slices) plus amortised map growth. The committed
// BENCH.json acceptance line is ≤ 880 allocs/op (10× under the 8,834
// the unpooled implementation performed); the budget sits under it with
// headroom so a regression trips here before it shows in CI numbers.
const enumerateAllocBudget = 600

// TestEnumerateSteadyStateAllocBudget is the alloc-regression guard for
// the pooled enumeration pipeline, enforced like the match pool test.
func TestEnumerateSteadyStateAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop entries; alloc counts are not meaningful")
	}
	g := kbgen.Sample()
	g.Freeze()
	s := g.NodeByName("brad_pitt")
	e := g.NodeByName("angelina_jolie")
	cfg := Config{MaxPatternSize: 5, PathAlg: PathPrioritized, UnionAlg: UnionPrune, Workers: 1}

	want := len(Explanations(g, s, e, cfg)) // warm pools, pin expected size
	if want == 0 {
		t.Fatal("sample enumeration returned nothing")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if got := len(Explanations(g, s, e, cfg)); got != want {
			t.Fatalf("enumeration size changed under pooling: %d != %d", got, want)
		}
	})
	if allocs > enumerateAllocBudget {
		t.Errorf("steady-state Explanations allocates %.0f times per op; budget %d", allocs, enumerateAllocBudget)
	}
}
