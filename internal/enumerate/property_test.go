package enumerate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rex/internal/kb"
	"rex/internal/match"
	"rex/internal/pattern"
)

// randomKB builds a small random knowledge base with mixed directed and
// undirected labels.
func randomKB(seed int64) (*kb.Graph, kb.NodeID, kb.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := kb.New()
	n := 6 + rng.Intn(7)
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a'+i%26))+string(rune('0'+i/26)), "t")
	}
	labels := []kb.LabelID{
		g.MustLabel("d1", true),
		g.MustLabel("d2", true),
		g.MustLabel("u1", false),
	}
	edges := 2*n + rng.Intn(2*n)
	for i := 0; i < edges; i++ {
		a, b := kb.NodeID(rng.Intn(n)), kb.NodeID(rng.Intn(n))
		if a != b {
			g.AddEdge(a, b, labels[rng.Intn(len(labels))])
		}
	}
	g.Freeze()
	return g, 0, 1
}

// TestQuickFrameworkEqualsNaiveOnRandomGraphs is the randomized
// counterpart of TestFrameworkMatchesNaiveEnum: on arbitrary small
// graphs, the path-union framework and the brute-force baseline must
// produce identical explanation sets (patterns and canonicalised
// instance sets), with pattern size limit 4 to keep NaiveEnum tractable
// inside a property test.
func TestQuickFrameworkEqualsNaiveOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g, start, end := randomKB(seed)
		const maxVars = 4
		want := NaiveEnum(g, start, end, maxVars)
		got := Explanations(g, start, end, Config{
			MaxPatternSize: maxVars,
			PathAlg:        PathPrioritized,
			UnionAlg:       UnionPrune,
		})
		if len(want) != len(got) {
			return false
		}
		type entry struct{ insts []string }
		sig := func(es []*pattern.Explanation) map[string]entry {
			m := make(map[string]entry, len(es))
			for _, ex := range es {
				m[ex.P.CanonicalKey()] = entry{insts: ex.CanonicalInstanceKeys()}
			}
			return m
		}
		ws, gs := sig(want), sig(got)
		for k, we := range ws {
			ge, ok := gs[k]
			if !ok || len(we.insts) != len(ge.insts) {
				return false
			}
			for i := range we.insts {
				if we.insts[i] != ge.insts[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnumerationInvariants property-checks the framework's output
// invariants on random graphs at the full size limit: minimality,
// instance validity, and agreement of every instance set with the
// independent matcher.
func TestQuickEnumerationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g, start, end := randomKB(seed)
		es := Explanations(g, start, end, Config{
			PathAlg: PathBasic, UnionAlg: UnionBasic,
		})
		for _, ex := range es {
			if !ex.P.Minimal() || len(ex.Instances) == 0 {
				return false
			}
			if ex.Validate(g, start, end) != nil {
				return false
			}
			if match.Count(g, ex.P, start, end) != len(ex.Instances) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPathAlgorithmsAgreeOnRandomGraphs checks all three path
// enumerators produce identical path sets on random graphs.
func TestQuickPathAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g, start, end := randomKB(seed)
		sig := func(pa PathAlgorithm) map[string]int {
			m := map[string]int{}
			for _, ex := range Paths(g, start, end, Config{PathAlg: pa}) {
				m[ex.P.CanonicalKey()] = len(ex.Instances)
			}
			return m
		}
		a, b, c := sig(PathNaive), sig(PathBasic), sig(PathPrioritized)
		if len(a) != len(b) || len(a) != len(c) {
			return false
		}
		for k, v := range a {
			if b[k] != v || c[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
