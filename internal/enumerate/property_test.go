package enumerate

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"rex/internal/kb"
	"rex/internal/match"
	"rex/internal/pattern"
)

// randomKB builds a small random knowledge base with mixed directed and
// undirected labels.
func randomKB(seed int64) (*kb.Graph, kb.NodeID, kb.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := kb.New()
	n := 6 + rng.Intn(7)
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a'+i%26))+string(rune('0'+i/26)), "t")
	}
	labels := []kb.LabelID{
		g.MustLabel("d1", true),
		g.MustLabel("d2", true),
		g.MustLabel("u1", false),
	}
	edges := 2*n + rng.Intn(2*n)
	for i := 0; i < edges; i++ {
		a, b := kb.NodeID(rng.Intn(n)), kb.NodeID(rng.Intn(n))
		if a != b {
			g.AddEdge(a, b, labels[rng.Intn(len(labels))])
		}
	}
	g.Freeze()
	return g, 0, 1
}

// TestQuickFrameworkEqualsNaiveOnRandomGraphs is the randomized
// counterpart of TestFrameworkMatchesNaiveEnum: on arbitrary small
// graphs, the path-union framework and the brute-force baseline must
// produce identical explanation sets (patterns and canonicalised
// instance sets), with pattern size limit 4 to keep NaiveEnum tractable
// inside a property test.
func TestQuickFrameworkEqualsNaiveOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g, start, end := randomKB(seed)
		const maxVars = 4
		want := NaiveEnum(g, start, end, maxVars)
		got := Explanations(g, start, end, Config{
			MaxPatternSize: maxVars,
			PathAlg:        PathPrioritized,
			UnionAlg:       UnionPrune,
		})
		if len(want) != len(got) {
			return false
		}
		type entry struct{ insts []pattern.InstanceKey }
		sig := func(es []*pattern.Explanation) map[string]entry {
			m := make(map[string]entry, len(es))
			for _, ex := range es {
				m[ex.P.CanonicalKey()] = entry{insts: ex.CanonicalInstanceKeys()}
			}
			return m
		}
		ws, gs := sig(want), sig(got)
		for k, we := range ws {
			ge, ok := gs[k]
			if !ok || len(we.insts) != len(ge.insts) {
				return false
			}
			for i := range we.insts {
				if we.insts[i] != ge.insts[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnumerationInvariants property-checks the framework's output
// invariants on random graphs at the full size limit: minimality,
// instance validity, and agreement of every instance set with the
// independent matcher. This is by far the slowest test of the package
// (tens of seconds at full count), so -short trims the iteration count.
func TestQuickEnumerationInvariants(t *testing.T) {
	maxCount := 30
	if testing.Short() {
		maxCount = 3
	}
	f := func(seed int64) bool {
		g, start, end := randomKB(seed)
		es := Explanations(g, start, end, Config{
			PathAlg: PathBasic, UnionAlg: UnionBasic,
		})
		for _, ex := range es {
			if !ex.P.Minimal() || len(ex.Instances) == 0 {
				return false
			}
			if ex.Validate(g, start, end) != nil {
				return false
			}
			if match.Count(g, ex.P, start, end) != len(ex.Instances) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPathAlgorithmsAgreeOnRandomGraphs checks all three path
// enumerators — and the prioritized enumerator at several worker-pool
// sizes — produce identical path sets on random graphs.
func TestQuickPathAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g, start, end := randomKB(seed)
		sig := func(cfg Config) map[string]int {
			m := map[string]int{}
			for _, ex := range Paths(g, start, end, cfg) {
				m[ex.P.CanonicalKey()] = len(ex.Instances)
			}
			return m
		}
		a := sig(Config{PathAlg: PathNaive})
		others := []Config{
			{PathAlg: PathBasic},
			{PathAlg: PathPrioritized, Workers: 1},
			{PathAlg: PathPrioritized, Workers: 4},
			{PathAlg: PathPrioritized}, // GOMAXPROCS workers
		}
		for _, cfg := range others {
			b := sig(cfg)
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if b[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPathsDeterministic checks the stronger property the engine
// documents: the grouped path explanations are byte-identical — same
// representative patterns, same instance order — for every worker count.
func TestParallelPathsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, start, end := randomKB(seed)
		base := Paths(g, start, end, Config{PathAlg: PathPrioritized, Workers: 1})
		for _, workers := range []int{2, 4, 8} {
			got := Paths(g, start, end, Config{PathAlg: PathPrioritized, Workers: workers})
			if len(got) != len(base) {
				t.Fatalf("seed %d workers %d: %d explanations, want %d", seed, workers, len(got), len(base))
			}
			for i := range base {
				if base[i].P.String() != got[i].P.String() {
					t.Fatalf("seed %d workers %d: representative %d differs: %s vs %s",
						seed, workers, i, base[i].P, got[i].P)
				}
				wantKeys := base[i].CanonicalInstanceKeys()
				gotKeys := got[i].CanonicalInstanceKeys()
				if len(wantKeys) != len(gotKeys) {
					t.Fatalf("seed %d workers %d: instance count differs at %d", seed, workers, i)
				}
				for j := range wantKeys {
					if wantKeys[j] != gotKeys[j] {
						t.Fatalf("seed %d workers %d: instance %d/%d differs", seed, workers, i, j)
					}
				}
			}
		}
	}
}

// TestPathsContextCancelled checks cancellation propagates out of every
// enumeration algorithm.
func TestPathsContextCancelled(t *testing.T) {
	g, start, end := randomKB(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []PathAlgorithm{PathNaive, PathBasic, PathPrioritized} {
		// The interval check may let tiny graphs finish before the first
		// poll; the explicit batch-0 check in each algorithm makes a
		// pre-cancelled context deterministic for prioritized, and the
		// others tolerate either outcome on graphs this small only if
		// enumeration is trivial — so only assert "no wrong error".
		es, err := PathsContext(ctx, g, start, end, Config{PathAlg: alg})
		if err == nil {
			continue // finished under the check interval: acceptable
		}
		if err != context.Canceled {
			t.Errorf("%v: err = %v, want context.Canceled", alg, err)
		}
		if es != nil {
			t.Errorf("%v: partial results returned alongside error", alg)
		}
	}
}
