// Package enumerate implements REX's explanation-enumeration algorithms
// (Section 3 of the paper):
//
//   - NaiveEnum: the gSpan-style graph-expansion baseline (Algorithm 1),
//     which generates non-minimal intermediates and filters.
//   - PathEnum{Naive,Basic,Prioritized}: simple-path explanation
//     enumeration between the targets (Section 3.2). Basic is the
//     bidirectional BANKS-style strategy, Prioritized the BANKS2-style
//     activation-score strategy.
//   - PathUnion{Basic,Prune}: combination of path explanations into all
//     minimal explanations (Algorithms 3 and 4).
//
// The general framework (Algorithm 2) is PathEnum followed by PathUnion;
// it generates all and only the minimal explanations with at least one
// instance, with pattern size (node count) bounded by the configured
// limit.
package enumerate

import (
	"context"
	"fmt"
	"math/bits"
	"slices"
	"strings"
	"time"

	"rex/internal/kb"
	"rex/internal/obs"
	"rex/internal/pattern"
)

// PathAlgorithm selects the simple-path enumeration strategy.
type PathAlgorithm int

// Path enumeration strategies, in increasing order of sophistication.
const (
	// PathNaive enumerates every length-limited simple path from the
	// start entity and keeps those ending at the end entity. It is the
	// paper's PathEnumNaive strawman.
	PathNaive PathAlgorithm = iota
	// PathBasic runs the bidirectional enumeration adapted from BANKS:
	// partial paths grow from both targets and join at a meeting node.
	PathBasic
	// PathPrioritized is the BANKS2 adaptation: bidirectional expansion
	// ordered by activation scores that postpone high-degree nodes.
	PathPrioritized
)

// String names the algorithm as in the paper's figures.
func (a PathAlgorithm) String() string {
	switch a {
	case PathNaive:
		return "PathEnumNaive"
	case PathBasic:
		return "PathEnumBasic"
	case PathPrioritized:
		return "PathEnumPrioritized"
	}
	return fmt.Sprintf("PathAlgorithm(%d)", int(a))
}

// UnionAlgorithm selects the path-combination strategy.
type UnionAlgorithm int

// Path union strategies.
const (
	// UnionBasic is Algorithm 3: every ring explanation merges with
	// every path explanation.
	UnionBasic UnionAlgorithm = iota
	// UnionPrune is Algorithm 4: composition histories restrict merge
	// partners per Theorem 3.
	UnionPrune
)

// String names the algorithm as in the paper's figures.
func (a UnionAlgorithm) String() string {
	switch a {
	case UnionBasic:
		return "PathUnionBasic"
	case UnionPrune:
		return "PathUnionPrune"
	}
	return fmt.Sprintf("UnionAlgorithm(%d)", int(a))
}

// Config parameterises enumeration. The zero value enumerates patterns of
// up to DefaultMaxPatternSize nodes with the best algorithms.
type Config struct {
	// MaxPatternSize bounds the number of nodes (variables) in a
	// pattern; the paper's n. Defaults to DefaultMaxPatternSize.
	MaxPatternSize int
	// PathAlg selects the path enumeration strategy. Defaults to
	// PathPrioritized (zero value is PathNaive; use Normalize or the
	// framework helpers to apply defaults).
	PathAlg PathAlgorithm
	// UnionAlg selects the combination strategy.
	UnionAlg UnionAlgorithm
	// Workers sizes the worker pool that the prioritized enumerator
	// fans its expansion frontier over: 0 means GOMAXPROCS, 1 forces
	// serial expansion. The enumerated explanation set and its ordering
	// are identical for every worker count.
	Workers int
	// Pool supplies reusable enumeration state. The facade owns one Pool
	// per knowledge-base snapshot (the measure.Evaluator lifetime
	// contract); nil falls back to a process-wide pool. Results never
	// alias pooled storage, so any pool choice yields identical output.
	Pool *Pool
	// Budget bounds enumeration work, turning the prioritized search
	// into an anytime algorithm. The zero value never truncates and is
	// byte-identical to unbudgeted enumeration.
	Budget Budget
}

// Budget bounds the work of one enumeration, making the prioritized
// search a true anytime algorithm (the activation scores of Section 3.2
// postpone high-degree hubs, so the paths found first are exactly the
// ones early termination should keep). When the budget expires the
// enumerator stops expanding and returns the explanations built from
// every path completed so far, reporting truncation instead of an
// error. The zero value never truncates.
type Budget struct {
	// MaxExpansions bounds the number of frontier node expansions of
	// the prioritized path search (0 = unlimited). Expansion-budgeted
	// searches run the canonical serial expansion order regardless of
	// Config.Workers, so the returned path set is a deterministic
	// prefix: enumerating with budget N always yields a subset of the
	// paths found with any budget ≥ N, and of the unbudgeted set.
	// Only PathPrioritized honours it; the naive and basic strawmen
	// have no frontier to bound and ignore it.
	MaxExpansions int
	// Deadline is the wall-clock cutoff (zero = none), polled at
	// bounded intervals in the prioritized expansion loop and the
	// union merge loop. Deadline truncation is inherently timing-
	// dependent and therefore not deterministic.
	Deadline time.Time
}

// restricts reports whether the budget can truncate at all.
func (b Budget) restricts() bool {
	return b.MaxExpansions > 0 || !b.Deadline.IsZero()
}

// budgetClock polls a deadline at a bounded interval; the zero value
// (no deadline) never expires. Expiry is sticky.
type budgetClock struct {
	deadline time.Time
	n        int
	expired  bool
}

// budgetCheckInterval bounds the work between deadline polls in the
// union merge loop (merges are heavyweight relative to time.Now, so a
// small interval keeps truncation prompt without measurable cost).
const budgetCheckInterval = 32

func (b *budgetClock) hit() bool {
	if b.expired {
		return true
	}
	if b.deadline.IsZero() {
		return false
	}
	b.n++
	if b.n%budgetCheckInterval != 0 {
		return false
	}
	b.expired = time.Now().After(b.deadline)
	return b.expired
}

// DefaultMaxPatternSize matches the paper's experimental pattern size
// limit of 5 nodes.
const DefaultMaxPatternSize = 5

// normalized returns cfg with defaults applied.
func (cfg Config) normalized() Config {
	if cfg.MaxPatternSize <= 0 {
		cfg.MaxPatternSize = DefaultMaxPatternSize
	}
	if cfg.MaxPatternSize > pattern.MaxVars {
		cfg.MaxPatternSize = pattern.MaxVars
	}
	return cfg
}

// Explanations runs the general enumeration framework (Algorithm 2):
// enumerate path explanations with length limit MaxPatternSize-1, then
// combine them into all minimal explanations of bounded size. The result
// is sorted deterministically by (pattern size, canonical key).
func Explanations(g *kb.Graph, start, end kb.NodeID, cfg Config) []*pattern.Explanation {
	out, _ := ExplanationsContext(context.Background(), g, start, end, cfg)
	return out
}

// ExplanationsContext is Explanations with cancellation: enumeration and
// combination check ctx at bounded intervals and abort mid-flight,
// returning ctx.Err() and no explanations.
func ExplanationsContext(ctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg Config) ([]*pattern.Explanation, error) {
	out, _, err := ExplanationsBudgeted(ctx, g, start, end, cfg)
	return out, err
}

// ExplanationsBudgeted is ExplanationsContext surfacing the anytime
// contract: when cfg.Budget truncates the search, truncated is true and
// the returned explanations are the complete minimal explanations built
// from every path the budget admitted — a valid (deterministic, for an
// expansion budget) subset of the unbudgeted result, never an error.
// With a zero budget the output is byte-identical to
// ExplanationsContext and truncated is always false.
func ExplanationsBudgeted(ctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg Config) (out []*pattern.Explanation, truncated bool, err error) {
	cfg = cfg.normalized()
	pl := cfg.pool()
	st := pl.get()
	defer pl.put(st)
	paths, truncated, err := st.paths(ctx, g, start, end, cfg)
	if err != nil {
		return nil, false, err
	}
	var utrunc bool
	switch cfg.UnionAlg {
	case UnionPrune:
		out, utrunc, err = st.pathUnionPrune(ctx, paths, cfg.MaxPatternSize, cfg.Budget.Deadline)
	default:
		out, utrunc, err = st.pathUnionBasic(ctx, paths, cfg.MaxPatternSize, cfg.Budget.Deadline)
	}
	if err != nil {
		return nil, false, err
	}
	sortExplanations(out)
	return out, truncated || utrunc, nil
}

// Paths enumerates all simple-path explanations between the targets with
// path length up to MaxPatternSize-1 (Section 3.2), grouped into
// explanations (pattern + instance set) and deterministically sorted.
func Paths(g *kb.Graph, start, end kb.NodeID, cfg Config) []*pattern.Explanation {
	out, _ := PathsContext(context.Background(), g, start, end, cfg)
	return out
}

// PathsContext is Paths with cancellation, checked at bounded intervals
// inside the enumeration loops.
func PathsContext(ctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg Config) ([]*pattern.Explanation, error) {
	out, _, err := PathsBudgeted(ctx, g, start, end, cfg)
	return out, err
}

// PathsBudgeted is PathsContext surfacing the anytime contract (see
// ExplanationsBudgeted): a truncating budget yields the path
// explanations completed so far with truncated = true.
func PathsBudgeted(ctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg Config) ([]*pattern.Explanation, bool, error) {
	cfg = cfg.normalized()
	pl := cfg.pool()
	st := pl.get()
	defer pl.put(st)
	return st.paths(ctx, g, start, end, cfg)
}

// paths runs the configured path enumerator on the pooled state and
// groups the result into explanations.
func (st *enumState) paths(ctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg Config) ([]*pattern.Explanation, bool, error) {
	// Single chokepoint for the enumerate stage: every entry point
	// (Explanations, Paths, and their budgeted forms) funnels path
	// enumeration through here, so one Begin/End pair covers them all.
	tr := obs.FromContext(ctx)
	if !st.fresh {
		tr.MarkPoolReused()
	}
	st.fresh = false
	t0 := tr.Begin()
	maxLen := cfg.MaxPatternSize - 1
	var (
		keys      []pathKey
		truncated bool
		err       error
	)
	switch cfg.PathAlg {
	case PathBasic:
		keys, err = pathEnumBasic(ctx, g, start, end, maxLen, st.out[:0])
	case PathPrioritized:
		keys, truncated, err = st.pathEnumPrioritized(ctx, g, start, end, maxLen, cfg.Workers, cfg.Budget)
	default:
		keys, err = pathEnumNaive(ctx, g, start, end, maxLen, st.out[:0])
	}
	if err != nil {
		return nil, false, err
	}
	out := st.groupPaths(g, keys)
	st.out = keys[:0] // retain the (possibly regrown) buffer for reuse
	tr.End(obs.StageEnumerate, t0, int64(len(out)))
	return out, truncated, nil
}

// pathKey is the comparable identity of a path instance: the node
// sequence plus per-step label and orientation, packed into a fixed-size
// struct so de-duplication maps hash it — and result buffers store it —
// without allocating. Path length is bounded by the pattern size limit,
// which New caps at pattern.MaxVars nodes. The key is the path: the full
// half-edge sequence reconstructs from nodes and steps (each step's
// target is the next node).
type pathKey struct {
	n     int8 // number of nodes; steps are n-1
	nodes [pattern.MaxVars]kb.NodeID
	steps [pattern.MaxVars - 1]pathStepKey
}

type pathStepKey struct {
	label kb.LabelID
	dir   kb.Dir
}

// stepSeqKey is a path's label/orientation sequence with the concrete
// nodes stripped: two start→end paths have the same stepSeqKey iff their
// patterns are isomorphic with targets pinned (interior variables of a
// path are positional, and reversal is ruled out by the pinned,
// distinct targets). It is the grouping key that turns path instances
// into path explanations without building a pattern per instance.
type stepSeqKey struct {
	n     int8
	steps [pattern.MaxVars - 1]pathStepKey
}

func (k *pathKey) stepSeq() stepSeqKey {
	return stepSeqKey{n: k.n, steps: k.steps}
}

// less orders path keys exactly as the legacy byte-string keys did
// (interleaved node/label little-endian bytes, prefix first), so the
// representative-pattern choice in groupPaths — and with it the rendered
// output — is unchanged from the string era.
func (a pathKey) less(b pathKey) bool {
	for i := 0; ; i++ {
		if i >= int(a.n) || i >= int(b.n) {
			return a.n < b.n
		}
		if a.nodes[i] != b.nodes[i] {
			return leLess32(uint32(a.nodes[i]), uint32(b.nodes[i]))
		}
		if i >= int(a.n)-1 || i >= int(b.n)-1 {
			return a.n < b.n
		}
		if a.steps[i] != b.steps[i] {
			if a.steps[i].label != b.steps[i].label {
				return leLess32(uint32(a.steps[i].label), uint32(b.steps[i].label))
			}
			return a.steps[i].dir < b.steps[i].dir
		}
	}
}

// leLess32 compares two 32-bit values by their little-endian byte
// encoding — the comparison the legacy string keys performed.
func leLess32(a, b uint32) bool {
	return bits.ReverseBytes32(a) < bits.ReverseBytes32(b)
}

// groupPaths converts path instances into path explanations: instances
// sharing an isomorphic pattern are grouped under one explanation. Two
// start→end paths are pattern-isomorphic exactly when their step
// sequences agree (see stepSeqKey), so grouping needs no pattern
// construction per instance: the keys are sorted (which also puts each
// group's smallest-keyed instance — the representative the parallel
// enumerator's determinism relies on — first), de-duplicated by adjacent
// equality, counted per group, and materialised with one pattern and one
// block-allocated instance set per group.
func (st *enumState) groupPaths(g *kb.Graph, keys []pathKey) []*pattern.Explanation {
	if len(keys) == 0 {
		return nil
	}
	slices.SortFunc(keys, func(a, b pathKey) int {
		if a.less(b) {
			return -1
		}
		if b.less(a) {
			return 1
		}
		return 0
	})
	// Pass 1: assign groups and count unique paths per group.
	clear(st.groups)
	st.gcounts = st.gcounts[:0]
	for i := range keys {
		if i > 0 && keys[i] == keys[i-1] {
			continue
		}
		ssk := keys[i].stepSeq()
		gid, ok := st.groups[ssk]
		if !ok {
			gid = int32(len(st.gcounts))
			st.groups[ssk] = gid
			st.gcounts = append(st.gcounts, 0)
		}
		st.gcounts[gid]++
	}
	// Pass 2: materialise. The representative pattern is built from the
	// group's first (smallest) key; every member shares its step
	// sequence, so instance numbering is positional for all of them:
	// [start, end, interior...]. Each group's instances share one flat
	// backing array sized exactly in pass 1, so a group costs one
	// pattern, one header slice and one ID block — regardless of how
	// many paths it contains.
	out := make([]*pattern.Explanation, len(st.gcounts))
	backs := make([][]kb.NodeID, len(st.gcounts))
	for i := range keys {
		if i > 0 && keys[i] == keys[i-1] {
			continue
		}
		k := &keys[i]
		gid := st.groups[k.stepSeq()]
		total := int(k.n)
		ex := out[gid]
		if ex == nil {
			nodes, steps := st.pathOf(k)
			p, _, err := pattern.FromPathInstance(g, nodes, steps)
			if err != nil {
				// Unreachable by construction; fail loudly in development.
				panic(err)
			}
			ex = &pattern.Explanation{P: p, Instances: make([]pattern.Instance, 0, st.gcounts[gid])}
			out[gid] = ex
			backs[gid] = make([]kb.NodeID, 0, int(st.gcounts[gid])*total)
		}
		b := backs[gid]
		off := len(b)
		b = append(b, k.nodes[0], k.nodes[k.n-1])
		b = append(b, k.nodes[1:int(k.n)-1]...)
		backs[gid] = b
		ex.Instances = append(ex.Instances, pattern.Instance(b[off:len(b):len(b)]))
	}
	sortExplanations(out)
	return out
}

// pathOf reconstructs a key's node and half-edge sequences into the
// state's scratch buffers (valid until the next call).
func (st *enumState) pathOf(k *pathKey) ([]kb.NodeID, []kb.HalfEdge) {
	n := int(k.n)
	nodes := st.nodesBuf[:n]
	steps := st.stepsBuf[:n-1]
	copy(nodes, k.nodes[:n])
	for i := 0; i < n-1; i++ {
		steps[i] = kb.HalfEdge{To: k.nodes[i+1], Label: k.steps[i].label, Dir: k.steps[i].dir}
	}
	return nodes, steps
}

// dedupInstances sorts an explanation's instances by key and removes
// adjacent duplicates in place — no map, no comparator allocation.
func dedupInstances(ex *pattern.Explanation) {
	slices.SortFunc(ex.Instances, func(a, b pattern.Instance) int {
		ka, kb := a.Key(), b.Key()
		if ka.Less(kb) {
			return -1
		}
		if kb.Less(ka) {
			return 1
		}
		return 0
	})
	out := ex.Instances[:0]
	for i, in := range ex.Instances {
		if i > 0 && in.Key() == ex.Instances[i-1].Key() {
			continue
		}
		out = append(out, in)
	}
	ex.Instances = out
}

// sortExplanations orders explanations by (pattern size, edge count,
// canonical key) for reproducible output, and sorts each instance list.
func sortExplanations(es []*pattern.Explanation) {
	for _, ex := range es {
		dedupInstances(ex)
	}
	slices.SortFunc(es, func(a, b *pattern.Explanation) int {
		pa, pb := a.P, b.P
		if pa.NumVars() != pb.NumVars() {
			return pa.NumVars() - pb.NumVars()
		}
		if pa.NumEdges() != pb.NumEdges() {
			return pa.NumEdges() - pb.NumEdges()
		}
		return strings.Compare(pa.CanonicalKey(), pb.CanonicalKey())
	})
}
