// Package enumerate implements REX's explanation-enumeration algorithms
// (Section 3 of the paper):
//
//   - NaiveEnum: the gSpan-style graph-expansion baseline (Algorithm 1),
//     which generates non-minimal intermediates and filters.
//   - PathEnum{Naive,Basic,Prioritized}: simple-path explanation
//     enumeration between the targets (Section 3.2). Basic is the
//     bidirectional BANKS-style strategy, Prioritized the BANKS2-style
//     activation-score strategy.
//   - PathUnion{Basic,Prune}: combination of path explanations into all
//     minimal explanations (Algorithms 3 and 4).
//
// The general framework (Algorithm 2) is PathEnum followed by PathUnion;
// it generates all and only the minimal explanations with at least one
// instance, with pattern size (node count) bounded by the configured
// limit.
package enumerate

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"rex/internal/kb"
	"rex/internal/pattern"
)

// PathAlgorithm selects the simple-path enumeration strategy.
type PathAlgorithm int

// Path enumeration strategies, in increasing order of sophistication.
const (
	// PathNaive enumerates every length-limited simple path from the
	// start entity and keeps those ending at the end entity. It is the
	// paper's PathEnumNaive strawman.
	PathNaive PathAlgorithm = iota
	// PathBasic runs the bidirectional enumeration adapted from BANKS:
	// partial paths grow from both targets and join at a meeting node.
	PathBasic
	// PathPrioritized is the BANKS2 adaptation: bidirectional expansion
	// ordered by activation scores that postpone high-degree nodes.
	PathPrioritized
)

// String names the algorithm as in the paper's figures.
func (a PathAlgorithm) String() string {
	switch a {
	case PathNaive:
		return "PathEnumNaive"
	case PathBasic:
		return "PathEnumBasic"
	case PathPrioritized:
		return "PathEnumPrioritized"
	}
	return fmt.Sprintf("PathAlgorithm(%d)", int(a))
}

// UnionAlgorithm selects the path-combination strategy.
type UnionAlgorithm int

// Path union strategies.
const (
	// UnionBasic is Algorithm 3: every ring explanation merges with
	// every path explanation.
	UnionBasic UnionAlgorithm = iota
	// UnionPrune is Algorithm 4: composition histories restrict merge
	// partners per Theorem 3.
	UnionPrune
)

// String names the algorithm as in the paper's figures.
func (a UnionAlgorithm) String() string {
	switch a {
	case UnionBasic:
		return "PathUnionBasic"
	case UnionPrune:
		return "PathUnionPrune"
	}
	return fmt.Sprintf("UnionAlgorithm(%d)", int(a))
}

// Config parameterises enumeration. The zero value enumerates patterns of
// up to DefaultMaxPatternSize nodes with the best algorithms.
type Config struct {
	// MaxPatternSize bounds the number of nodes (variables) in a
	// pattern; the paper's n. Defaults to DefaultMaxPatternSize.
	MaxPatternSize int
	// PathAlg selects the path enumeration strategy. Defaults to
	// PathPrioritized (zero value is PathNaive; use Normalize or the
	// framework helpers to apply defaults).
	PathAlg PathAlgorithm
	// UnionAlg selects the combination strategy.
	UnionAlg UnionAlgorithm
	// Workers sizes the worker pool that the prioritized enumerator
	// fans its expansion frontier over: 0 means GOMAXPROCS, 1 forces
	// serial expansion. The enumerated explanation set and its ordering
	// are identical for every worker count.
	Workers int
}

// DefaultMaxPatternSize matches the paper's experimental pattern size
// limit of 5 nodes.
const DefaultMaxPatternSize = 5

// normalized returns cfg with defaults applied.
func (cfg Config) normalized() Config {
	if cfg.MaxPatternSize <= 0 {
		cfg.MaxPatternSize = DefaultMaxPatternSize
	}
	if cfg.MaxPatternSize > pattern.MaxVars {
		cfg.MaxPatternSize = pattern.MaxVars
	}
	return cfg
}

// Explanations runs the general enumeration framework (Algorithm 2):
// enumerate path explanations with length limit MaxPatternSize-1, then
// combine them into all minimal explanations of bounded size. The result
// is sorted deterministically by (pattern size, canonical key).
func Explanations(g *kb.Graph, start, end kb.NodeID, cfg Config) []*pattern.Explanation {
	out, _ := ExplanationsContext(context.Background(), g, start, end, cfg)
	return out
}

// ExplanationsContext is Explanations with cancellation: enumeration and
// combination check ctx at bounded intervals and abort mid-flight,
// returning ctx.Err() and no explanations.
func ExplanationsContext(ctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg Config) ([]*pattern.Explanation, error) {
	cfg = cfg.normalized()
	paths, err := PathsContext(ctx, g, start, end, cfg)
	if err != nil {
		return nil, err
	}
	var out []*pattern.Explanation
	switch cfg.UnionAlg {
	case UnionPrune:
		out, err = pathUnionPrune(ctx, paths, cfg.MaxPatternSize)
	default:
		out, err = pathUnionBasic(ctx, paths, cfg.MaxPatternSize)
	}
	if err != nil {
		return nil, err
	}
	sortExplanations(out)
	return out, nil
}

// Paths enumerates all simple-path explanations between the targets with
// path length up to MaxPatternSize-1 (Section 3.2), grouped into
// explanations (pattern + instance set) and deterministically sorted.
func Paths(g *kb.Graph, start, end kb.NodeID, cfg Config) []*pattern.Explanation {
	out, _ := PathsContext(context.Background(), g, start, end, cfg)
	return out
}

// PathsContext is Paths with cancellation, checked at bounded intervals
// inside the enumeration loops.
func PathsContext(ctx context.Context, g *kb.Graph, start, end kb.NodeID, cfg Config) ([]*pattern.Explanation, error) {
	cfg = cfg.normalized()
	maxLen := cfg.MaxPatternSize - 1
	var (
		insts []pathInst
		err   error
	)
	switch cfg.PathAlg {
	case PathBasic:
		insts, err = pathEnumBasic(ctx, g, start, end, maxLen)
	case PathPrioritized:
		insts, err = pathEnumPrioritized(ctx, g, start, end, maxLen, cfg.Workers)
	default:
		insts, err = pathEnumNaive(ctx, g, start, end, maxLen)
	}
	if err != nil {
		return nil, err
	}
	return groupPaths(g, insts), nil
}

// pathInst is a simple path at the instance level: the node sequence and
// the half-edges taken between consecutive nodes.
type pathInst struct {
	nodes []kb.NodeID
	steps []kb.HalfEdge
	// k memoises key(): enumerators that already computed the key for
	// deduplication store it here so grouping does not rebuild it.
	k      pathKey
	hasKey bool
}

// pathKey is the comparable identity of a path instance: the node
// sequence plus per-step label and orientation, packed into a fixed-size
// struct so de-duplication maps hash it without allocating. Path length
// is bounded by the pattern size limit, which New caps at
// pattern.MaxVars nodes.
type pathKey struct {
	n     int8 // number of nodes; steps are n-1
	nodes [pattern.MaxVars]kb.NodeID
	steps [pattern.MaxVars - 1]pathStepKey
}

type pathStepKey struct {
	label kb.LabelID
	dir   kb.Dir
}

// key builds the path's comparable identity.
func (p *pathInst) key() pathKey {
	if p.hasKey {
		return p.k
	}
	var k pathKey
	k.n = int8(len(p.nodes))
	copy(k.nodes[:], p.nodes)
	for i, s := range p.steps {
		k.steps[i] = pathStepKey{label: s.Label, dir: s.Dir}
	}
	return k
}

// less orders path keys exactly as the legacy byte-string keys did
// (interleaved node/label little-endian bytes, prefix first), so the
// representative-pattern choice in groupPaths — and with it the rendered
// output — is unchanged from the string era.
func (a pathKey) less(b pathKey) bool {
	for i := 0; ; i++ {
		if i >= int(a.n) || i >= int(b.n) {
			return a.n < b.n
		}
		if a.nodes[i] != b.nodes[i] {
			return leLess32(uint32(a.nodes[i]), uint32(b.nodes[i]))
		}
		if i >= int(a.n)-1 || i >= int(b.n)-1 {
			return a.n < b.n
		}
		if a.steps[i] != b.steps[i] {
			if a.steps[i].label != b.steps[i].label {
				return leLess32(uint32(a.steps[i].label), uint32(b.steps[i].label))
			}
			return a.steps[i].dir < b.steps[i].dir
		}
	}
}

// leLess32 compares two 32-bit values by their little-endian byte
// encoding — the comparison the legacy string keys performed.
func leLess32(a, b uint32) bool {
	return bits.ReverseBytes32(a) < bits.ReverseBytes32(b)
}

// groupPaths converts path instances into path explanations: instances
// sharing an isomorphic pattern are grouped under one explanation. The
// instances are sorted by key first so that each explanation's
// representative pattern — the pattern of the smallest-keyed instance in
// its isomorphism class — is independent of the traversal order that
// discovered the paths; this is what lets the parallel enumerator return
// byte-identical results for every worker count.
func groupPaths(g *kb.Graph, insts []pathInst) []*pattern.Explanation {
	type keyed struct {
		key pathKey
		pi  pathInst
	}
	ks := make([]keyed, len(insts))
	for i, pi := range insts {
		ks[i] = keyed{key: pi.key(), pi: pi}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key.less(ks[j].key) })
	byCanon := make(map[pattern.Key]*pattern.Explanation)
	seen := make(map[pathKey]struct{}, len(insts))
	for _, kp := range ks {
		pi := kp.pi
		k := kp.key
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		p, inst, err := pattern.FromPathInstance(g, pi.nodes, pi.steps)
		if err != nil {
			// Unreachable by construction; fail loudly in development.
			panic(err)
		}
		ck := p.Key()
		if ex, ok := byCanon[ck]; ok {
			ex.Instances = append(ex.Instances, remapInstance(ex.P, p, inst))
		} else {
			byCanon[ck] = &pattern.Explanation{P: p, Instances: []pattern.Instance{inst}}
		}
	}
	out := make([]*pattern.Explanation, 0, len(byCanon))
	for _, ex := range byCanon {
		dedupInstances(ex)
		out = append(out, ex)
	}
	sortExplanations(out)
	return out
}

// remapInstance translates an instance of pattern q into the variable
// numbering of the isomorphic representative p. For path patterns built
// by FromPathInstance the numbering is positional, but two isomorphic
// paths can traverse their labels in mirrored variable orders, so a
// mapping search is required. Patterns are tiny; brute force suffices.
func remapInstance(p, q *pattern.Pattern, inst pattern.Instance) pattern.Instance {
	m := findIsomorphism(q, p)
	if m == nil {
		panic("enumerate: isomorphic patterns with no variable mapping")
	}
	out := make(pattern.Instance, p.NumVars())
	for qv, pv := range m {
		out[pv] = inst[qv]
	}
	return out
}

// findIsomorphism returns a mapping m with m[qVar] = pVar such that q's
// edges rename exactly onto p's edges (targets pinned), or nil.
func findIsomorphism(q, p *pattern.Pattern) []pattern.VarID {
	if q.NumVars() != p.NumVars() || q.NumEdges() != p.NumEdges() {
		return nil
	}
	n := q.NumVars()
	m := make([]pattern.VarID, n)
	m[pattern.Start], m[pattern.End] = pattern.Start, pattern.End
	used := make([]bool, n)
	used[pattern.Start], used[pattern.End] = true, true

	// Index p's edges for O(1) membership under a candidate mapping.
	type ekey struct {
		u, v pattern.VarID
		l    kb.LabelID
	}
	pEdges := make(map[ekey]int, p.NumEdges())
	for _, e := range p.Edges() {
		pEdges[ekey{e.U, e.V, e.Label}]++
	}
	sch := p.Schema()
	checkFull := func() bool {
		seen := make(map[ekey]int, q.NumEdges())
		for _, e := range q.Edges() {
			u, v := m[e.U], m[e.V]
			if !sch.LabelDirected(e.Label) && u > v {
				u, v = v, u
			}
			seen[ekey{u, v, e.Label}]++
		}
		if len(seen) != len(pEdges) {
			return false
		}
		for k, c := range seen {
			if pEdges[k] != c {
				return false
			}
		}
		return true
	}
	var rec func(qv int) bool
	rec = func(qv int) bool {
		if qv == n {
			return checkFull()
		}
		if qv == int(pattern.Start) || qv == int(pattern.End) {
			return rec(qv + 1)
		}
		for pv := 2; pv < n; pv++ {
			if used[pv] {
				continue
			}
			used[pv] = true
			m[qv] = pattern.VarID(pv)
			if rec(qv + 1) {
				return true
			}
			used[pv] = false
		}
		return false
	}
	if !rec(0) {
		return nil
	}
	return m
}

// dedupInstances removes duplicate instances in place and sorts them.
func dedupInstances(ex *pattern.Explanation) {
	seen := make(map[pattern.InstanceKey]struct{}, len(ex.Instances))
	out := ex.Instances[:0]
	for _, in := range ex.Instances {
		k := in.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key().Less(out[j].Key()) })
	ex.Instances = out
}

// sortExplanations orders explanations by (pattern size, edge count,
// canonical key) for reproducible output, and sorts each instance list.
func sortExplanations(es []*pattern.Explanation) {
	for _, ex := range es {
		dedupInstances(ex)
	}
	sort.Slice(es, func(i, j int) bool {
		pi, pj := es[i].P, es[j].P
		if pi.NumVars() != pj.NumVars() {
			return pi.NumVars() < pj.NumVars()
		}
		if pi.NumEdges() != pj.NumEdges() {
			return pi.NumEdges() < pj.NumEdges()
		}
		return pi.CanonicalKey() < pj.CanonicalKey()
	})
}
