package learn

import (
	"math"
	"sort"

	"rex/internal/measure"
	"rex/internal/pattern"
)

// Example is one training pair: its candidate explanations with feature
// vectors and the (simulated) rater relevance of each candidate.
type Example struct {
	// Features[i] is the feature vector of candidate i.
	Features [][]float64
	// Relevance[i] is the mean rater label of candidate i (0..2).
	Relevance []float64
	// Keys[i] identifies candidate i for deterministic tie-breaks.
	Keys []string
}

// NewExample extracts features and relevance for one pair's candidates.
// relevance maps an explanation's canonical key to its mean rater label.
func NewExample(ctx *measure.Context, candidates []*pattern.Explanation, relevance map[string]float64) Example {
	ex := Example{
		Features:  make([][]float64, len(candidates)),
		Relevance: make([]float64, len(candidates)),
		Keys:      make([]string, len(candidates)),
	}
	for i, c := range candidates {
		key := c.P.CanonicalKey()
		ex.Features[i] = Vector(ctx, c)
		ex.Relevance[i] = relevance[key]
		ex.Keys[i] = key
	}
	return ex
}

// dcgAt10 evaluates the model's ranking quality on one example with the
// paper's DCG formula, normalised so a perfect ranking of all-2 labels
// scores 100.
func dcgAt10(m *Model, ex Example) float64 {
	type scored struct {
		s   float64
		rel float64
		key string
	}
	items := make([]scored, len(ex.Features))
	for i := range ex.Features {
		items[i] = scored{s: m.Score(ex.Features[i]), rel: ex.Relevance[i], key: ex.Keys[i]}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].s != items[j].s {
			return items[i].s > items[j].s
		}
		return items[i].key < items[j].key
	})
	wsum := 0.0
	for i := 1; i <= 10; i++ {
		wsum += 1 / math.Log2(float64(i)+1)
	}
	norm := 100.0 / (2.0 * wsum)
	total := 0.0
	for i := 0; i < 10 && i < len(items); i++ {
		total += items[i].rel / math.Log2(float64(i)+2)
	}
	return norm * total
}

// Objective is the mean DCG@10 across examples.
func Objective(m *Model, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	total := 0.0
	for _, ex := range examples {
		total += dcgAt10(m, ex)
	}
	return total / float64(len(examples))
}

// Train fits weights by cyclic coordinate ascent over a fixed grid:
// each pass tries a set of candidate values for one weight while holding
// the others, keeping any strict improvement of the mean DCG. The grid
// includes negative values so the model can learn to penalise a feature.
// Training is deterministic and typically converges in 2–4 passes.
func Train(examples []Example, passes int) *Model {
	if passes <= 0 {
		passes = 4
	}
	m := NewModel()
	grid := []float64{-0.5, -0.25, -0.1, 0, 0.1, 0.25, 0.5, 0.75, 1.0}
	best := Objective(m, examples)
	for p := 0; p < passes; p++ {
		improved := false
		for d := 0; d < len(m.Weights); d++ {
			orig := m.Weights[d]
			bestW := orig
			for _, w := range grid {
				if w == orig {
					continue
				}
				m.Weights[d] = w
				if obj := Objective(m, examples); obj > best+1e-9 {
					best = obj
					bestW = w
					improved = true
				}
			}
			m.Weights[d] = bestW
		}
		if !improved {
			break
		}
	}
	return m
}
