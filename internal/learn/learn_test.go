package learn

import (
	"testing"

	"rex/internal/enumerate"
	"rex/internal/kbgen"
	"rex/internal/measure"
	"rex/internal/pattern"
	"rex/internal/study"
)

func learnSetup(t *testing.T, start, end string) (*measure.Context, []*pattern.Explanation) {
	t.Helper()
	g := kbgen.Sample()
	s := g.NodeByName(start)
	e := g.NodeByName(end)
	es := enumerate.Explanations(g, s, e, enumerate.Config{})
	return &measure.Context{G: g, Start: s, End: e}, es
}

func TestVectorShapeAndRange(t *testing.T) {
	ctx, es := learnSetup(t, "brad_pitt", "angelina_jolie")
	if len(FeatureNames()) != NumFeatures() {
		t.Fatal("feature name/count mismatch")
	}
	for _, ex := range es {
		f := Vector(ctx, ex)
		if len(f) != NumFeatures() {
			t.Fatalf("vector length %d", len(f))
		}
		for i, v := range f {
			if v < 0 || v > 1.0000001 {
				t.Errorf("feature %s = %v out of [0,1]", FeatureNames()[i], v)
			}
		}
		// Pathness agrees with the pattern.
		if (f[5] == 1) != ex.P.IsPath() {
			t.Errorf("pathness feature wrong for %v", ex.P)
		}
	}
}

func TestModelScoreLinear(t *testing.T) {
	m := &Model{Weights: []float64{1, 0, 0, 0, 0, 0}}
	if got := m.Score([]float64{0.5, 9, 9, 9, 9, 9}); got != 0.5 {
		t.Fatalf("score = %v", got)
	}
	if s := m.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestMeasureAdapterCaches(t *testing.T) {
	ctx, es := learnSetup(t, "brad_pitt", "angelina_jolie")
	lm := NewMeasure(NewModel())
	if lm.Name() != "learned" || lm.AntiMonotonic() {
		t.Error("adapter metadata")
	}
	for _, ex := range es {
		a := lm.Score(ctx, ex)
		b := lm.Score(ctx, ex)
		if a[0] != b[0] {
			t.Fatal("cached score differs")
		}
	}
	if len(lm.cache) != len(es) {
		t.Errorf("cache has %d entries for %d explanations", len(lm.cache), len(es))
	}
}

// TestTrainRecoversDominantFeature: when relevance is exactly one
// feature, training must put dominant weight on it and rank near-
// perfectly.
func TestTrainRecoversDominantFeature(t *testing.T) {
	ctx, es := learnSetup(t, "brad_pitt", "angelina_jolie")
	// Ground truth: simplicity is everything.
	rel := make(map[string]float64, len(es))
	for _, ex := range es {
		rel[ex.P.CanonicalKey()] = 2.0 / float64(ex.P.NumVars()-1)
	}
	example := NewExample(ctx, es, rel)
	m := Train([]Example{example}, 4)
	base := Objective(NewModel(), []Example{example})
	trained := Objective(m, []Example{example})
	if trained < base {
		t.Fatalf("training regressed: %v -> %v", base, trained)
	}
	if m.Weights[0] <= 0 {
		t.Errorf("simplicity weight not positive: %v", m)
	}
}

// TestTrainImprovesOverUniform trains on simulated judgments of two
// pairs and verifies the objective does not regress.
func TestTrainImprovesOverUniform(t *testing.T) {
	g := kbgen.Sample()
	var examples []Example
	for _, names := range [][2]string{
		{"brad_pitt", "angelina_jolie"},
		{"kate_winslet", "leonardo_dicaprio"},
	} {
		s := g.NodeByName(names[0])
		e := g.NodeByName(names[1])
		es := enumerate.Explanations(g, s, e, enumerate.Config{})
		ctx := &measure.Context{G: g, Start: s, End: e}
		panel := study.NewPanel(g, s, e, es, 5, 17)
		rel := make(map[string]float64, len(es))
		for _, ex := range es {
			rel[ex.P.CanonicalKey()] = panel.Judge(ex).AvgLabel()
		}
		examples = append(examples, NewExample(ctx, es, rel))
	}
	uniform := Objective(NewModel(), examples)
	m := Train(examples, 4)
	trained := Objective(m, examples)
	if trained < uniform-1e-9 {
		t.Fatalf("training regressed: uniform %v, trained %v", uniform, trained)
	}
}

func TestTrainDeterministic(t *testing.T) {
	ctx, es := learnSetup(t, "kate_winslet", "leonardo_dicaprio")
	rel := make(map[string]float64, len(es))
	for i, ex := range es {
		rel[ex.P.CanonicalKey()] = float64(i % 3) // arbitrary but fixed
	}
	example := NewExample(ctx, es, rel)
	m1 := Train([]Example{example}, 3)
	m2 := Train([]Example{example}, 3)
	for i := range m1.Weights {
		if m1.Weights[i] != m2.Weights[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestObjectiveEmpty(t *testing.T) {
	if Objective(NewModel(), nil) != 0 {
		t.Error("empty objective must be 0")
	}
}
