// Package learn implements the measure combination the paper leaves as
// future work (Section 5.4.1): "we can definitely further improve the
// combinations using machine learning techniques". A linear model over
// normalised per-measure features is trained by coordinate ascent to
// maximise the DCG of its rankings against (simulated) rater judgments,
// then used as a drop-in interestingness measure.
//
// Everything is deterministic: the feature extraction, the search grid
// and the tie-breaking, so trained weights are reproducible.
package learn

import (
	"fmt"

	"rex/internal/measure"
	"rex/internal/pattern"
)

// FeatureNames lists the model features in vector order. Every feature
// is normalised into [0, 1]-ish range with "higher = more interesting
// under that feature's own philosophy", so weights are comparable.
func FeatureNames() []string {
	return []string{
		"simplicity",   // 1/(size-1): the size measure
		"conductance",  // random-walk current, clamped to [0,1]
		"strength",     // count/(count+2): the count measure
		"monostrength", // monocount/(monocount+2)
		"local-rarity", // 1/(1+local position)
		"pathness",     // 1 for simple paths, 0 otherwise
	}
}

// NumFeatures is the dimensionality of the feature vector.
func NumFeatures() int { return len(FeatureNames()) }

// Vector extracts the feature vector of an explanation. The local-rarity
// feature evaluates the pattern's local distribution, which dominates
// the extraction cost — cache vectors when ranking repeatedly.
func Vector(ctx *measure.Context, ex *pattern.Explanation) []float64 {
	f := make([]float64, NumFeatures())
	f[0] = 1.0 / float64(ex.P.NumVars()-1)
	c := measure.RandomWalk{}.Score(ctx, ex)[0]
	if c > 1 {
		c = 1
	}
	f[1] = c
	cnt := float64(ex.Count())
	f[2] = cnt / (cnt + 2)
	mono := float64(ex.Monocount())
	f[3] = mono / (mono + 2)
	pos := -measure.LocalPosition{}.Score(ctx, ex)[0]
	f[4] = 1.0 / (1.0 + pos)
	if ex.P.IsPath() {
		f[5] = 1
	}
	return f
}

// Model is a linear scorer over the feature vector.
type Model struct {
	Weights []float64
}

// NewModel returns a model with neutral (uniform) weights.
func NewModel() *Model {
	w := make([]float64, NumFeatures())
	for i := range w {
		w[i] = 1.0 / float64(len(w))
	}
	return &Model{Weights: w}
}

// Score computes the linear combination for a feature vector.
func (m *Model) Score(f []float64) float64 {
	s := 0.0
	for i, w := range m.Weights {
		if i < len(f) {
			s += w * f[i]
		}
	}
	return s
}

// String renders the learned weights with their feature names.
func (m *Model) String() string {
	out := "learned{"
	for i, n := range FeatureNames() {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%.2f", n, m.Weights[i])
	}
	return out + "}"
}

// Measure adapts the model to the measure.Measure interface. Feature
// vectors are memoised per pattern because ranking evaluates the measure
// once per explanation but training evaluates it once per candidate per
// weight probe.
type Measure struct {
	Model *Model
	cache map[string][]float64
}

// NewMeasure wraps a model for ranking.
func NewMeasure(m *Model) *Measure {
	return &Measure{Model: m, cache: make(map[string][]float64)}
}

// Name implements measure.Measure.
func (lm *Measure) Name() string { return "learned" }

// AntiMonotonic implements measure.Measure: a mixed linear combination
// has no monotonicity guarantee.
func (lm *Measure) AntiMonotonic() bool { return false }

// Score implements measure.Measure.
func (lm *Measure) Score(ctx *measure.Context, ex *pattern.Explanation) measure.Score {
	key := ex.P.CanonicalKey()
	f, ok := lm.cache[key]
	if !ok {
		f = Vector(ctx, ex)
		lm.cache[key] = f
	}
	return measure.Score{lm.Model.Score(f)}
}
