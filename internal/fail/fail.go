// Package fail is a tiny failpoint registry for fault-injection tests.
//
// Production code marks crash-relevant points on the durability and
// swap paths with fail.Hit("name"); the call is a single atomic load
// when no failpoint is armed, so the hooks can stay compiled into the
// binary. Tests arm a point with Enable (inject an error once or every
// time) or EnableFunc (arbitrary behaviour, e.g. "write half the
// record, then fail" for torn-write simulation) and tear everything
// down with Reset.
//
// The registry is process-global and safe for concurrent use; a point's
// hook runs on the goroutine that hits it.
package fail

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by failpoints armed with Enable;
// tests match it with errors.Is to tell injected faults from real ones.
var ErrInjected = errors.New("fail: injected fault")

// armed counts enabled failpoints. Hit returns immediately while it is
// zero, so the production fast path is one atomic load.
var armed atomic.Int64

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

// point is one armed failpoint.
type point struct {
	fn    func() error
	times int64 // remaining triggers; negative = unlimited
	hits  uint64
}

// Enable arms name to return an error wrapping ErrInjected (and naming
// the point) on every Hit until Disable or Reset.
func Enable(name string) {
	EnableTimes(name, -1)
}

// EnableTimes arms name to fail the next n Hits, then fall back to
// passing. n < 0 means every Hit.
func EnableTimes(name string, n int64) {
	err := fmt.Errorf("%w at %s", ErrInjected, name)
	enable(name, n, func() error { return err })
}

// EnableFunc arms name with an arbitrary hook: Hit returns whatever fn
// returns. Use it for partial-write simulation, panics, or delays.
func EnableFunc(name string, fn func() error) {
	enable(name, -1, fn)
}

// EnableStall arms name to block every Hit for d and then pass. This is
// the "replica is up but lagging" fault: unlike Enable, the hit
// eventually succeeds, so a stalled point exercises timeout, hedging
// and breaker paths rather than error handling. The sleep runs on the
// hitting goroutine, outside the registry lock, so other failpoints
// stay responsive while one seam is stalled.
func EnableStall(name string, d time.Duration) {
	enable(name, -1, func() error { time.Sleep(d); return nil })
}

func enable(name string, times int64, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{fn: fn, times: times}
}

// Disable disarms one failpoint; unknown names are no-ops.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint. Tests defer it so an armed point can
// never leak into the next test.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(int64(-len(points)))
	points = map[string]*point{}
}

// Hits reports how many times the named point has fired since it was
// armed (0 for unarmed points).
func Hits(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Hit triggers the named failpoint: nil when the point is unarmed (the
// common case, a single atomic load), otherwise whatever the armed hook
// returns. A point armed with EnableTimes stops failing after its
// budget is spent but keeps counting hits.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.times == 0 {
		mu.Unlock()
		return nil
	}
	if p.times > 0 {
		p.times--
	}
	fn := p.fn
	mu.Unlock()
	return fn()
}
