package fail

import (
	"errors"
	"sync"
	"testing"
)

func TestUnarmedIsNil(t *testing.T) {
	defer Reset()
	if err := Hit("nothing.here"); err != nil {
		t.Fatalf("unarmed Hit returned %v", err)
	}
}

func TestEnableDisable(t *testing.T) {
	defer Reset()
	Enable("p")
	if err := Hit("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Hit = %v, want ErrInjected", err)
	}
	if err := Hit("other"); err != nil {
		t.Fatalf("unrelated point failed: %v", err)
	}
	Disable("p")
	if err := Hit("p"); err != nil {
		t.Fatalf("disabled Hit = %v", err)
	}
}

func TestEnableTimes(t *testing.T) {
	defer Reset()
	EnableTimes("p", 2)
	for i := 0; i < 2; i++ {
		if err := Hit("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d = %v, want ErrInjected", i, err)
		}
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit after budget = %v, want nil", err)
	}
	if got := Hits("p"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestEnableFunc(t *testing.T) {
	defer Reset()
	custom := errors.New("custom")
	n := 0
	EnableFunc("p", func() error {
		n++
		if n == 1 {
			return nil
		}
		return custom
	})
	if err := Hit("p"); err != nil {
		t.Fatalf("first hit = %v", err)
	}
	if err := Hit("p"); !errors.Is(err, custom) {
		t.Fatalf("second hit = %v, want custom", err)
	}
}

func TestConcurrentHits(t *testing.T) {
	defer Reset()
	Enable("p")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				Hit("p")
				Hit("q")
			}
		}()
	}
	wg.Wait()
	if got := Hits("p"); got != 800 {
		t.Fatalf("Hits = %d, want 800", got)
	}
}
