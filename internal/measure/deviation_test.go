package measure

import (
	"testing"

	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/match"
	"rex/internal/pattern"
)

func TestDeviationArithmetic(t *testing.T) {
	counts := map[kb.NodeID]int{1: 1, 2: 1, 3: 1, 4: 5}
	// mean = 2, variance = (1+1+1+9)/4 = 3, sd = sqrt(3).
	got := deviation(counts, 5)
	want := (5.0 - 2.0) / 1.7320508075688772
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("deviation = %v, want %v", got, want)
	}
}

func TestDeviationDegenerate(t *testing.T) {
	if deviation(map[kb.NodeID]int{1: 3}, 3) != 0 {
		t.Error("single-point distribution must score 0")
	}
	if deviation(map[kb.NodeID]int{1: 2, 2: 2, 3: 2}, 2) != 0 {
		t.Error("zero-variance distribution must score 0")
	}
	if deviation(nil, 1) != 0 {
		t.Error("empty distribution must score 0")
	}
}

// TestLocalDeviationOrdering: for Brad Pitt's co-star pattern, Julia
// Roberts (3 shared films) must deviate upward from the co-star count
// distribution while Angelina Jolie (1 shared film) must not.
func TestLocalDeviationOrdering(t *testing.T) {
	g := kbgen.Sample()
	star := g.LabelByName(kbgen.RelStarring)
	brad := g.NodeByName("brad_pitt")
	costar := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
	})
	julia := g.NodeByName("julia_roberts")
	angelina := g.NodeByName("angelina_jolie")

	scoreFor := func(end kb.NodeID, count int) float64 {
		ctx := &Context{G: g, Start: brad, End: end}
		insts := make([]pattern.Instance, count)
		for i := range insts {
			insts[i] = pattern.Instance{brad, end, kb.NodeID(1000 + i)}
		}
		ex := &pattern.Explanation{P: costar, Instances: insts}
		return LocalDeviation{}.Score(ctx, ex)[0]
	}
	sJulia := scoreFor(julia, 3)
	sAngelina := scoreFor(angelina, 1)
	if !(sJulia > sAngelina) {
		t.Errorf("julia (%v) must out-deviate angelina (%v)", sJulia, sAngelina)
	}
	if sJulia <= 0 {
		t.Errorf("julia's 3 co-starred films should sit above the mean, got %v", sJulia)
	}
}

func TestGlobalDeviationAveragesLocals(t *testing.T) {
	g := kbgen.Sample()
	brad := g.NodeByName("brad_pitt")
	angelina := g.NodeByName("angelina_jolie")
	star := g.LabelByName(kbgen.RelStarring)
	costar := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
	})
	ex := &pattern.Explanation{P: costar, Instances: []pattern.Instance{{brad, angelina, 0}}}
	starts := SampleStartsOfType(g, "actor", 6, 5)
	ctx := &Context{G: g, Start: brad, End: angelina, SampleStarts: starts}
	got := GlobalDeviation{}.Score(ctx, ex)[0]
	want := 0.0
	for _, s := range starts {
		want += deviation(match.CountByEnd(g, costar, s), 1)
	}
	want /= float64(len(starts))
	if d := got - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("global deviation %v, want %v", got, want)
	}
	// Fallback without samples equals the local deviation.
	ctx2 := &Context{G: g, Start: brad, End: angelina}
	if (GlobalDeviation{}).Score(ctx2, ex)[0] != (LocalDeviation{}).Score(ctx2, ex)[0] {
		t.Error("no-sample global deviation must equal local")
	}
}

func TestSampleStartsOfType(t *testing.T) {
	g := kbgen.Sample()
	starts := SampleStartsOfType(g, "actor", 10, 3)
	if len(starts) == 0 {
		t.Fatal("no typed starts sampled")
	}
	for _, s := range starts {
		if g.Node(s).Type != "actor" {
			t.Fatalf("sampled %s of type %s", g.NodeName(s), g.Node(s).Type)
		}
	}
	if got := SampleStartsOfType(g, "no-such-type", 5, 3); len(got) != 0 {
		t.Errorf("unknown type sampled %d starts", len(got))
	}
}
