package measure

import (
	"context"
	"testing"

	"rex/internal/kbgen"
	"rex/internal/pattern"
)

// TestLocalPositionExample7 recreates the shape of the paper's Example 7:
// for Brad Pitt, the spousal explanation with count 1 has a better (lower)
// local position than the co-starring explanation with count 1, because
// other actors co-star with him more often while nobody out-marries a
// spouse edge.
func TestLocalPositionExample7(t *testing.T) {
	ctx, es := sampleCtx(t, "brad_pitt", "angelina_jolie")
	g := ctx.G
	star := g.LabelByName(kbgen.RelStarring)
	spouse := g.LabelByName(kbgen.RelSpouse)
	costarKey := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
	}).CanonicalKey()
	spouseKey := pattern.MustNew(g, 2, []pattern.Edge{
		{U: pattern.Start, V: pattern.End, Label: spouse},
	}).CanonicalKey()

	var costarPos, spousePos float64 = -1, -1
	local := LocalPosition{}
	for _, ex := range es {
		switch ex.P.CanonicalKey() {
		case costarKey:
			costarPos = -local.Score(ctx, ex)[0]
		case spouseKey:
			spousePos = -local.Score(ctx, ex)[0]
		}
	}
	if costarPos < 0 || spousePos < 0 {
		t.Fatal("costar or spouse explanation not enumerated")
	}
	if spousePos != 0 {
		t.Errorf("spouse position = %v, want 0 (no one beats a spouse edge)", spousePos)
	}
	// Brad co-stars once with Angelina; julia (3), clooney (2), damon
	// (2), and several Troy/Vampire/Oceans co-stars beat or match — the
	// ones strictly above count 1 produce a positive position.
	if costarPos <= 0 {
		t.Errorf("costar position = %v, want > 0", costarPos)
	}
	if !(spousePos < costarPos) {
		t.Errorf("spouse (%v) must rank rarer than costar (%v)", spousePos, costarPos)
	}
}

// TestLocalPositionLimitSemantics verifies the LIMIT pruning contract:
// full computation when the true score ties or beats the threshold,
// ok=false only when strictly below.
func TestLocalPositionLimitSemantics(t *testing.T) {
	ctx, es := sampleCtx(t, "brad_pitt", "angelina_jolie")
	local := LocalPosition{}
	for _, ex := range es {
		full := local.Score(ctx, ex)
		// Threshold exactly at the score: must not be pruned.
		s, ok := local.ScoreWithLimit(ctx, ex, full)
		if !ok || s.Cmp(full) != 0 {
			t.Fatalf("tie with threshold pruned: %v ok=%v want %v", s, ok, full)
		}
		// Threshold strictly above: must be pruned.
		above := Score{full[0] + 1}
		if _, ok := local.ScoreWithLimit(ctx, ex, above); ok {
			t.Fatalf("score %v not pruned under threshold %v", full, above)
		}
		// Threshold strictly below: full score.
		belowT := Score{full[0] - 1}
		s, ok = local.ScoreWithLimit(ctx, ex, belowT)
		if !ok || s.Cmp(full) != 0 {
			t.Fatalf("low threshold distorted score: %v ok=%v", s, ok)
		}
	}
}

// TestGlobalPositionSumsLocals verifies that the global estimate equals
// the sum of local positions over the sampled starts.
func TestGlobalPositionSumsLocals(t *testing.T) {
	ctx, es := sampleCtx(t, "brad_pitt", "angelina_jolie")
	ctx.SampleStarts = SampleStarts(ctx.G, 12, 3)
	global := GlobalPosition{}
	for _, ex := range es[:min(len(es), 6)] {
		want := 0.0
		a := ex.Count()
		for _, s := range ctx.SampleStarts {
			pos, ok := streamLocalPosition(context.Background(), ctx.G, ex.P, s, a, -1)
			if !ok {
				t.Fatal("unlimited streamLocalPosition aborted")
			}
			want += float64(pos)
		}
		got := -global.Score(ctx, ex)[0]
		if got != want {
			t.Errorf("global position = %v, want %v", got, want)
		}
	}
}

// TestGlobalPositionFallsBackToQueryStart checks the no-samples fallback.
func TestGlobalPositionFallback(t *testing.T) {
	ctx, es := sampleCtx(t, "brad_pitt", "angelina_jolie")
	local := LocalPosition{}
	global := GlobalPosition{}
	for _, ex := range es[:min(len(es), 4)] {
		if got, want := global.Score(ctx, ex)[0], local.Score(ctx, ex)[0]; got != want {
			t.Errorf("no-sample global %v != local %v", got, want)
		}
	}
}

// TestGlobalPositionLimit checks pruning semantics for the global
// measure.
func TestGlobalPositionLimit(t *testing.T) {
	ctx, es := sampleCtx(t, "brad_pitt", "angelina_jolie")
	ctx.SampleStarts = SampleStarts(ctx.G, 10, 3)
	global := GlobalPosition{}
	for _, ex := range es[:min(len(es), 6)] {
		full := global.Score(ctx, ex)
		if s, ok := global.ScoreWithLimit(ctx, ex, full); !ok || s.Cmp(full) != 0 {
			t.Fatalf("tie pruned: %v ok=%v", s, ok)
		}
		if _, ok := global.ScoreWithLimit(ctx, ex, Score{full[0] + 1}); ok {
			t.Fatalf("strictly-worse score not pruned")
		}
	}
}
