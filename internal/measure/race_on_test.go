//go:build race

package measure

// raceEnabled lets alloc-count tests skip themselves under the race
// detector, which adds bookkeeping allocations of its own.
const raceEnabled = true
