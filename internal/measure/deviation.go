package measure

import (
	"math"
	"sort"

	"rex/internal/kb"
	"rex/internal/match"
	"rex/internal/pattern"
)

// The paper's second distributional statistic (Section 4.3): instead of
// the explanation's position in the distribution, measure how many
// standard deviations its aggregate value lies above the distribution's
// mean ("turns out to be similarly effective as M_position"; the paper
// omits details for space). REX implements it so the claim can be
// checked: see the measure-ablation benchmarks.
//
// The distribution D is the multiset of per-end instance counts of the
// pattern with the start fixed — entities with no instance contribute
// nothing, exactly as in the position measure, which only ever counts
// entities whose aggregate exceeds a value ≥ 1.

// LocalDeviation scores an explanation by (A - mean(D_l)) / stddev(D_l),
// where A is the explanation's instance count and D_l the local count
// distribution. Higher means the pair's bond is unusually strong for
// this pattern. A degenerate distribution (single point or zero
// variance) scores 0.
type LocalDeviation struct{}

// Name implements Measure.
func (LocalDeviation) Name() string { return "local-dev" }

// AntiMonotonic implements Measure.
func (LocalDeviation) AntiMonotonic() bool { return false }

// Score implements Measure.
func (LocalDeviation) Score(ctx *Context, ex *pattern.Explanation) Score {
	counts, _ := countByEnd(ctx, ex.P, ctx.Start)
	a := float64(ex.Count())
	return Score{deviation(counts, a)}
}

// countByEnd routes a local-distribution table computation through the
// shared evaluator when the context carries one. The returned map is
// shared on that route and must be treated as read-only.
func countByEnd(ctx *Context, p *pattern.Pattern, start kb.NodeID) (map[kb.NodeID]int, error) {
	if ev := ctx.Eval; ev != nil {
		return ev.CountByEnd(ctx.Context(), p, start)
	}
	return match.CountByEndContext(ctx.Context(), ctx.G, p, start)
}

// GlobalDeviation averages the deviation over the sampled start
// entities' local distributions, mirroring the global position estimate.
type GlobalDeviation struct{}

// Name implements Measure.
func (GlobalDeviation) Name() string { return "global-dev" }

// AntiMonotonic implements Measure.
func (GlobalDeviation) AntiMonotonic() bool { return false }

// Score implements Measure.
func (GlobalDeviation) Score(ctx *Context, ex *pattern.Explanation) Score {
	starts := ctx.SampleStarts
	if len(starts) == 0 {
		starts = []kb.NodeID{ctx.Start}
	}
	a := float64(ex.Count())
	total := 0.0
	cctx := ctx.Context()
	for _, s := range starts {
		if cctx.Err() != nil {
			break // partial score; the caller checks the context
		}
		counts, _ := countByEnd(ctx, ex.P, s)
		total += deviation(counts, a)
	}
	return Score{total / float64(len(starts))}
}

// deviation computes (a - mean) / stddev over the count multiset,
// returning 0 for degenerate distributions. Values are summed in sorted
// key order so the floating-point result is identical across runs (map
// iteration order is randomised in Go).
func deviation(counts map[kb.NodeID]int, a float64) float64 {
	n := float64(len(counts))
	if n < 2 {
		return 0
	}
	ids := make([]kb.NodeID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sum := 0.0
	for _, id := range ids {
		sum += float64(counts[id])
	}
	mean := sum / n
	varsum := 0.0
	for _, id := range ids {
		d := float64(counts[id]) - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / n)
	if sd == 0 {
		return 0
	}
	return (a - mean) / sd
}
