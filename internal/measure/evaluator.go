// Shared-computation measure evaluation. The interestingness measures of
// Section 4 are dominated by subgraph-match counting: the distributional
// measures evaluate every explanation's pattern with a free end (and,
// globally, over ~100 sampled starts), and nothing in the naive
// formulation is shared between the many explanations of one query even
// though PathUnion builds them all from a small set of overlapping
// simple paths. The Evaluator recovers that sharing at two levels:
//
//   - Result memoisation: match counts are cached by (pattern key, pair)
//     and per-end count tables by (pattern key, start), so re-evaluating
//     a pattern — across measures of a combination, repeated queries on
//     one snapshot, or the study harness — never matches twice.
//   - Prefix sharing: path patterns (the bulk of every explanation set)
//     are evaluated by a label-indexed walk instead of the general
//     backtracking matcher, and the partial walks of every prefix are
//     cached, so explanations that extend the same path reuse its
//     partial-instance frontier instead of re-walking it from the start
//     entity.
//
// An Evaluator is pinned to one frozen graph. The facade builds one per
// snapshot (rex.Explainer owns it, rex.Store rebuilds the Explainer on
// every hot swap), so memo lifetime equals snapshot lifetime and stale
// counts can never leak across generations. Because a snapshot can live
// indefinitely (a static KB never swaps) while memo keys are driven by
// user queries, every cache in the evaluator is bounded: the result
// memos flush wholesale on overflow and the prefix cache evicts by
// start — memory stays fixed no matter the query diversity.
//
// Concurrency: the memos are split into power-of-two lock shards keyed
// by the low bits of pattern.Key (an FNV-1a hash, so the bits are well
// mixed), and the prefix cache into shards keyed by start node, so
// concurrent BatchExplain workers hitting different patterns or starts
// never serialise on one mutex. Sharding only partitions the maps;
// every result is computed exactly as before, so scores are
// byte-identical to the single-lock implementation.

package measure

import (
	"context"
	"sync"
	"sync/atomic"

	"rex/internal/kb"
	"rex/internal/match"
	"rex/internal/obs"
	"rex/internal/pattern"
)

// MemoStats is a snapshot of the evaluator's memo occupancy and
// effectiveness, sampled by the serving tier's /metrics gauges.
// Counters reset with the evaluator on hot swap; occupancy is current.
type MemoStats struct {
	// PairMemos and TableCells are the result-memo occupancy summed
	// across lock shards (bounded by maxPairMemos / maxTableCells).
	PairMemos  int
	TableCells int
	// PrefixStarts and PrefixNodes are the walk-cache occupancy: live
	// start buckets and total node IDs cached across them.
	PrefixStarts int
	PrefixNodes  int
	// Hits and Misses count result-memo lookups (Count + CountByEnd);
	// WalkHits and WalkMisses count prefix walk-cache lookups.
	Hits, Misses         uint64
	WalkHits, WalkMisses uint64
	// Promotions counts memos promoted from the previous generation
	// after a hot swap instead of recomputed.
	Promotions uint64
}

// MemoStats gathers the snapshot, taking each shard lock briefly.
func (ev *Evaluator) MemoStats() MemoStats {
	st := MemoStats{
		Hits:       ev.hits.Load(),
		Misses:     ev.misses.Load(),
		WalkHits:   ev.walkHits.Load(),
		WalkMisses: ev.walkMisses.Load(),
		Promotions: ev.promotions.Load(),
	}
	for i := range ev.shards {
		sh := &ev.shards[i]
		sh.mu.Lock()
		st.PairMemos += len(sh.pairs)
		st.TableCells += sh.tableCells
		sh.mu.Unlock()
	}
	for i := range ev.prefixes.shards {
		ps := &ev.prefixes.shards[i]
		ps.mu.Lock()
		for _, sp := range ps.starts {
			st.PrefixStarts++
			st.PrefixNodes += sp.size
		}
		ps.mu.Unlock()
	}
	return st
}

// Evaluator memoises match-count computations over one frozen graph. It
// is safe for concurrent use; cached tables are shared and must be
// treated as read-only by callers.
type Evaluator struct {
	g *kb.Graph

	shards   [evalShardCount]evalShard
	prefixes prefixCache

	// carry, when set, links to the previous generation's evaluator for
	// cross-snapshot memo promotion (see carry.go). promotions counts
	// memos promoted through it.
	carry      atomic.Pointer[carryLink]
	promotions atomic.Uint64

	// Memo effectiveness counters for MemoStats: result-memo lookups
	// (Count and CountByEnd) and prefix walk-cache lookups. Reset with
	// the evaluator on hot swap, like the memos themselves.
	hits, misses         atomic.Uint64
	walkHits, walkMisses atomic.Uint64
}

// evalShard holds one lock shard of the result memos. Shards are
// selected by pattern key, so all memo traffic for one pattern —
// including the CountByEnd table an explanation set shares — lands on
// one mutex while different patterns proceed in parallel.
type evalShard struct {
	mu         sync.Mutex
	pairs      map[pairCountKey]int
	tables     map[tableKey]map[kb.NodeID]int
	tableCells int // total entries across this shard's tables
}

// evalShardCount is the number of result-memo lock shards. Power of two
// so shard selection is a mask; 16 comfortably covers any realistic
// BatchExplain worker count while keeping the per-shard flush bounds
// meaningful.
const evalShardCount = 16

// shardFor selects the lock shard for a pattern key. The key is an
// FNV-1a hash, so its low bits are uniformly distributed.
func (ev *Evaluator) shardFor(k pattern.Key) *evalShard {
	return &ev.shards[uint64(k)&(evalShardCount-1)]
}

type pairCountKey struct {
	p          pattern.Key
	start, end kb.NodeID
}

type tableKey struct {
	p     pattern.Key
	start kb.NodeID
}

// Memory bounds for the prefix-walk cache. Overflowing either cap only
// disables caching for the offending entries — results are computed
// either way, so the bounds trade speed for memory, never correctness.
const (
	// maxPrefixStarts bounds the number of start entities with live
	// prefix caches; the least recently used bucket is evicted. Sized to
	// cover the global measure's default 100 sampled starts plus the
	// query pair, so a full global-distribution ranking reuses every
	// sample's prefixes across explanations.
	maxPrefixStarts = 128
	// maxPrefixNodesPerStart bounds the node IDs stored across all
	// cached walk levels of one start (256 KiB per start at the cap,
	// ≈32 MiB per snapshot worst case).
	maxPrefixNodesPerStart = 1 << 16
	// maxWalkNodes aborts a materialised walk level that outgrows any
	// reasonable cache entry; the computation falls back to the
	// streaming matcher, which never materialises the instance set.
	maxWalkNodes = 1 << 20
	// maxPairMemos and maxTableCells bound the result memos, whose keys
	// are driven by user queries and would otherwise grow for the whole
	// snapshot lifetime (a static KB never swaps its evaluator away).
	// On overflow the memos are flushed wholesale — rare, cheap, and it
	// re-warms with the current working set instead of freezing on the
	// oldest one. The totals are split evenly across the lock shards
	// (each shard flushes independently at total/shards), so the
	// worst-case footprint is unchanged from the single-lock era:
	// ≈ maxTableCells table entries ≈ 64 MiB.
	maxPairMemos  = 1 << 20
	maxTableCells = 1 << 22

	maxPairMemosPerShard  = maxPairMemos / evalShardCount
	maxTableCellsPerShard = maxTableCells / evalShardCount
)

// NewEvaluator builds an evaluator over a frozen graph.
func NewEvaluator(g *kb.Graph) *Evaluator {
	ev := &Evaluator{g: g}
	for i := range ev.shards {
		ev.shards[i].pairs = make(map[pairCountKey]int)
		ev.shards[i].tables = make(map[tableKey]map[kb.NodeID]int)
	}
	return ev
}

// Graph returns the frozen graph the evaluator is pinned to.
func (ev *Evaluator) Graph() *kb.Graph { return ev.g }

// Count returns the number of instances of p between start and end,
// memoised by (pattern key, pair). Cancellation aborts the underlying
// match without poisoning the memo.
func (ev *Evaluator) Count(ctx context.Context, p *pattern.Pattern, start, end kb.NodeID) (int, error) {
	key := pairCountKey{p.Key(), start, end}
	sh := ev.shardFor(key.p)
	sh.mu.Lock()
	n, ok := sh.pairs[key]
	sh.mu.Unlock()
	if ok {
		ev.hits.Add(1)
		obs.FromContext(ctx).MemoHit()
		return n, nil
	}
	ev.misses.Add(1)
	obs.FromContext(ctx).MemoMiss()
	n, promoted := ev.carriedCount(p, key)
	if !promoted {
		var err error
		n, err = match.CountContext(ctx, ev.g, p, start, end)
		if err != nil {
			return 0, err
		}
	}
	sh.mu.Lock()
	if len(sh.pairs) >= maxPairMemosPerShard {
		sh.pairs = make(map[pairCountKey]int)
	}
	sh.pairs[key] = n
	sh.mu.Unlock()
	if promoted {
		ev.promotions.Add(1)
	}
	return n, nil
}

// CountByEnd returns the per-end instance counts of p with the start
// bound and the end free — the local distribution D_l — memoised by
// (pattern key, start). The returned map is shared: callers must not
// modify it. Path patterns are evaluated by the prefix-sharing walk;
// everything else falls back to the general matcher.
func (ev *Evaluator) CountByEnd(ctx context.Context, p *pattern.Pattern, start kb.NodeID) (map[kb.NodeID]int, error) {
	key := tableKey{p.Key(), start}
	sh := ev.shardFor(key.p)
	sh.mu.Lock()
	t, ok := sh.tables[key]
	sh.mu.Unlock()
	if ok {
		ev.hits.Add(1)
		obs.FromContext(ctx).MemoHit()
		return t, nil
	}
	ev.misses.Add(1)
	obs.FromContext(ctx).MemoMiss()
	counts, promoted := ev.carriedTable(p, key)
	if !promoted {
		var err error
		if steps, isPath := p.PathSteps(); isPath {
			counts, err = ev.pathCountByEnd(ctx, start, steps)
		} else {
			// The memo map doubles as the matcher's accumulation table, so
			// the general path allocates exactly the map it retains.
			counts = make(map[kb.NodeID]int)
			err = match.CountByEndInto(ctx, ev.g, p, start, counts)
		}
		if err != nil {
			return nil, err
		}
	}
	sh.mu.Lock()
	if sh.tableCells+len(counts) > maxTableCellsPerShard {
		sh.tables = make(map[tableKey]map[kb.NodeID]int)
		sh.tableCells = 0
	}
	sh.tables[key] = counts
	sh.tableCells += len(counts)
	sh.mu.Unlock()
	if promoted {
		ev.promotions.Add(1)
	}
	return counts, nil
}

// hasTable reports whether the (pattern, start) count table is already
// memoised; the position measure uses it to decide between a table scan
// and the streaming limit-pruned enumeration.
func (ev *Evaluator) hasTable(p *pattern.Pattern, start kb.NodeID) bool {
	key := tableKey{p.Key(), start}
	sh := ev.shardFor(key.p)
	sh.mu.Lock()
	_, ok := sh.tables[key]
	sh.mu.Unlock()
	return ok
}

// LocalPosition counts the end entities whose instance count with start
// strictly exceeds a (the position of the explanation in D_l). When
// limit ≥ 0 and the position provably exceeds limit, ok=false is
// returned — the "LIMIT p" pruning. Results are identical to the
// streaming implementation in dist.go; the evaluator merely picks the
// cheaper route: a scan of a (memoised or cheaply built) count table for
// path patterns, the limit-pruned streaming matcher otherwise.
func (ev *Evaluator) LocalPosition(ctx context.Context, p *pattern.Pattern, start kb.NodeID, a, limit int) (pos int, ok bool, err error) {
	if _, isPath := p.PathSteps(); isPath || ev.hasTable(p, start) {
		counts, err := ev.CountByEnd(ctx, p, start)
		if err != nil {
			return 0, false, err
		}
		exceeded := 0
		for _, c := range counts {
			if c > a {
				exceeded++
				if limit >= 0 && exceeded > limit {
					return 0, false, nil
				}
			}
		}
		return exceeded, true, nil
	}
	pos, ok = streamLocalPosition(ctx, ev.g, p, start, a, limit)
	return pos, ok, ctx.Err()
}

// --- Prefix-sharing walk evaluation for path patterns. ---

// stepSeqKey identifies a walk level: the start-anchored step sequence
// prefix of a path pattern.
type stepSeqKey struct {
	n     int8
	steps [pattern.MaxVars - 1]pattern.PathStep
}

func seqKey(steps []pattern.PathStep) stepSeqKey {
	var k stepSeqKey
	k.n = int8(len(steps))
	copy(k.steps[:], steps)
	return k
}

// walkSet is the materialised set of injective walks matching one step
// prefix from one start: walk i occupies nodes[i*stride : (i+1)*stride],
// nodes[i*stride] being the start entity. A walkSet is immutable once
// cached.
type walkSet struct {
	stride int
	nodes  []kb.NodeID
}

func (w walkSet) count() int { return len(w.nodes) / w.stride }

// startPrefixes is the per-start bucket of cached walk levels.
type startPrefixes struct {
	levels map[stepSeqKey]walkSet
	size   int // total node IDs stored
}

// prefixShardCount is the number of prefix-cache lock shards. Power of
// two so selection is a mask over the (densely allocated) node ID.
const prefixShardCount = 8

// maxPrefixStartsPerShard keeps the global LRU bound: each shard holds
// its share of the maxPrefixStarts budget and evicts independently.
const maxPrefixStartsPerShard = maxPrefixStarts / prefixShardCount

// prefixCache is an LRU over start entities, sharded by start node so
// concurrent queries walking different starts (BatchExplain workers,
// global-distribution sampling) never serialise on one mutex, and long
// walk computations never block unrelated memo lookups.
type prefixCache struct {
	shards [prefixShardCount]prefixShard
}

// prefixShard is one lock shard: an independent LRU over its share of
// the start entities.
type prefixShard struct {
	mu     sync.Mutex
	starts map[kb.NodeID]*startPrefixes
	order  []kb.NodeID // LRU order, most recent last
}

// shardFor selects the shard owning a start node. Node IDs are dense
// sequential integers, so the low bits spread starts evenly.
func (pc *prefixCache) shardFor(start kb.NodeID) *prefixShard {
	return &pc.shards[uint32(start)&(prefixShardCount-1)]
}

func (ps *prefixShard) bucket(start kb.NodeID) *startPrefixes {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.starts == nil {
		ps.starts = make(map[kb.NodeID]*startPrefixes)
	}
	sp, ok := ps.starts[start]
	if !ok {
		sp = &startPrefixes{levels: make(map[stepSeqKey]walkSet)}
		ps.starts[start] = sp
		ps.order = append(ps.order, start)
		if len(ps.order) > maxPrefixStartsPerShard {
			evict := ps.order[0]
			ps.order = ps.order[1:]
			delete(ps.starts, evict)
		}
		return sp
	}
	for i, s := range ps.order {
		if s == start {
			ps.order = append(append(ps.order[:i:i], ps.order[i+1:]...), start)
			break
		}
	}
	return sp
}

func (ps *prefixShard) get(sp *startPrefixes, key stepSeqKey) (walkSet, bool) {
	ps.mu.Lock()
	w, ok := sp.levels[key]
	ps.mu.Unlock()
	return w, ok
}

func (ps *prefixShard) put(sp *startPrefixes, key stepSeqKey, w walkSet) {
	ps.mu.Lock()
	if sp.size+len(w.nodes) <= maxPrefixNodesPerStart {
		if _, dup := sp.levels[key]; !dup {
			sp.levels[key] = w
			sp.size += len(w.nodes)
		}
	}
	ps.mu.Unlock()
}

// errWalkTooLarge aborts materialisation when a walk level outgrows
// maxWalkNodes; the caller falls back to the streaming matcher.
type walkTooLargeError struct{}

func (walkTooLargeError) Error() string { return "measure: materialised walk level too large" }

var errWalkTooLarge error = walkTooLargeError{}

// pathCountByEnd evaluates a path pattern's local distribution via the
// shared prefix walk. Counting from the full-length walk set is exact:
// for a simple-path pattern the injective walks from the start are
// precisely the pattern's instances (injectivity of the walk is the
// instance-level injectivity, and Definition 2's target-avoidance is
// subsumed by it), so counts per terminal equal the matcher's per-end
// counts.
func (ev *Evaluator) pathCountByEnd(ctx context.Context, start kb.NodeID, steps []pattern.PathStep) (map[kb.NodeID]int, error) {
	ps := ev.prefixes.shardFor(start)
	sp := ps.bucket(start)
	w, err := ev.walksAt(ctx, ps, sp, start, steps)
	if err == errWalkTooLarge {
		// Too big to materialise: stream it instead (no cache, bounded
		// memory, identical result).
		counts := make(map[kb.NodeID]int)
		serr := ev.streamPathCounts(ctx, start, steps, counts)
		if serr != nil {
			return nil, serr
		}
		return counts, nil
	}
	if err != nil {
		return nil, err
	}
	counts := make(map[kb.NodeID]int)
	for i := 0; i < w.count(); i++ {
		counts[w.nodes[i*w.stride+w.stride-1]]++
	}
	return counts, nil
}

// walksAt returns the injective walks matching steps from start,
// recursively extending the cached next-shortest prefix.
func (ev *Evaluator) walksAt(ctx context.Context, ps *prefixShard, sp *startPrefixes, start kb.NodeID, steps []pattern.PathStep) (walkSet, error) {
	if len(steps) == 0 {
		return walkSet{stride: 1, nodes: []kb.NodeID{start}}, nil
	}
	key := seqKey(steps)
	if w, ok := ps.get(sp, key); ok {
		ev.walkHits.Add(1)
		obs.FromContext(ctx).WalkHit()
		return w, nil
	}
	ev.walkMisses.Add(1)
	obs.FromContext(ctx).WalkMiss()
	if w, ok := ev.carriedWalks(steps, start, key); ok {
		ps.put(sp, key, w)
		ev.promotions.Add(1)
		return w, nil
	}
	prev, err := ev.walksAt(ctx, ps, sp, start, steps[:len(steps)-1])
	if err != nil {
		return walkSet{}, err
	}
	last := steps[len(steps)-1]
	out := walkSet{stride: prev.stride + 1}
	checked := 0
	for i := 0; i < prev.count(); i++ {
		walk := prev.nodes[i*prev.stride : (i+1)*prev.stride]
		tail := walk[len(walk)-1]
	nextEdge:
		for _, he := range ev.g.NeighborsLabeled(tail, last.Label) {
			if he.Dir != last.Dir {
				continue
			}
			checked++
			if checked%walkCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return walkSet{}, err
				}
			}
			for _, n := range walk {
				if n == he.To {
					continue nextEdge
				}
			}
			out.nodes = append(out.nodes, walk...)
			out.nodes = append(out.nodes, he.To)
			if len(out.nodes) > maxWalkNodes {
				return walkSet{}, errWalkTooLarge
			}
		}
	}
	ps.put(sp, key, out)
	return out, nil
}

// walkCheckInterval bounds extension steps between context checks.
const walkCheckInterval = 1024

// streamPathCounts is the unmaterialised fallback: a depth-first walk
// accumulating per-terminal counts directly.
func (ev *Evaluator) streamPathCounts(ctx context.Context, start kb.NodeID, steps []pattern.PathStep, counts map[kb.NodeID]int) error {
	var walk [pattern.MaxVars]kb.NodeID
	walk[0] = start
	checked := 0
	var dfs func(depth int) error
	dfs = func(depth int) error {
		if depth == len(steps) {
			counts[walk[depth]]++
			return nil
		}
		st := steps[depth]
	nextEdge:
		for _, he := range ev.g.NeighborsLabeled(walk[depth], st.Label) {
			if he.Dir != st.Dir {
				continue
			}
			checked++
			if checked%walkCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			for i := 0; i <= depth; i++ {
				if walk[i] == he.To {
					continue nextEdge
				}
			}
			walk[depth+1] = he.To
			if err := dfs(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(0)
}
