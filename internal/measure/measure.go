// Package measure implements REX's interestingness measures (Section 4):
//
//   - structure-based: Size and RandomWalk (Section 4.1);
//   - aggregate: Count and Monocount (Section 4.2), the latter
//     anti-monotonic and therefore usable for top-k pruning;
//   - distribution-based: position in the local and global aggregate
//     distributions (Section 4.3);
//   - lexicographic combinations such as size+monocount and
//     size+local-dist (Section 5.4.1).
//
// Scores are vectors compared lexicographically, higher meaning more
// interesting; single-valued measures return length-1 vectors and
// combinations concatenate.
package measure

import (
	"context"

	"rex/internal/electric"
	"rex/internal/kb"
	"rex/internal/match"
	"rex/internal/pattern"
)

// Score is a lexicographically ordered interestingness value; greater
// means more interesting.
type Score []float64

// Less reports whether s is strictly less interesting than t. Missing
// trailing components compare as zero.
func (s Score) Less(t Score) bool { return s.Cmp(t) < 0 }

// Cmp compares lexicographically: -1 when s < t, 0 on equality, 1 when
// s > t.
func (s Score) Cmp(t Score) int {
	n := len(s)
	if len(t) > n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(s) {
			a = s[i]
		}
		if i < len(t) {
			b = t[i]
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
	}
	return 0
}

// Context carries the evaluation inputs shared by all measures for one
// query: the knowledge base, the target pair, and — for the global
// distributional measure — the sampled start entities whose local
// distributions estimate the global one (Section 5.3.2 uses 100).
type Context struct {
	G     *kb.Graph
	Start kb.NodeID
	End   kb.NodeID
	// SampleStarts are the start entities used to estimate the global
	// distribution. Leave nil unless a global measure is evaluated.
	SampleStarts []kb.NodeID
	// Ctx carries the query's cancellation signal into long-running
	// measure evaluations (the distributional measures walk large
	// neighbourhoods). Nil means no cancellation. When the context is
	// cancelled mid-evaluation a measure returns an incomplete score;
	// callers observing a done context must discard results and surface
	// ctx.Err() — the rank layer does exactly that.
	Ctx context.Context
	// Eval, when non-nil, routes match counting through the
	// shared-computation evaluator: counts memoised per (pattern key,
	// pair), local-distribution tables per (pattern key, start), and
	// path patterns evaluated with shared prefix walks. Scores are
	// identical with or without it; only the cost changes. The evaluator
	// must be pinned to the same graph as G.
	Eval *Evaluator
}

// Context returns the cancellation context, defaulting to Background so
// measures never nil-check.
func (c *Context) Context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// Measure scores explanations. Implementations must be pure functions of
// (Context, Explanation) so ranking can reorder evaluations freely.
type Measure interface {
	// Name is the identifier used in experiment tables (Table 1).
	Name() string
	// AntiMonotonic reports whether expanding a pattern can only lower
	// the score (Definition 7); anti-monotonic measures allow the
	// Theorem 4 top-k pruning.
	AntiMonotonic() bool
	// Score computes the interestingness of an explanation.
	Score(ctx *Context, ex *pattern.Explanation) Score
}

// A Limited measure can prune its own evaluation: when the true score is
// certain to fall strictly below threshold, the computation may stop
// early and report ok=false. Ties with the threshold must be computed in
// full so that pruned rankings agree exactly with unpruned ones. This is
// the paper's "LIMIT p" optimisation for distribution-based measures
// (Section 5.3.2).
type Limited interface {
	Measure
	// ScoreWithLimit behaves like Score but may return ok=false once the
	// result is provably strictly less than threshold. A nil threshold
	// means no pruning.
	ScoreWithLimit(ctx *Context, ex *pattern.Explanation, threshold Score) (s Score, ok bool)
}

// Size is the pattern-size measure: smaller patterns are more
// interesting, so the score is the negated variable count. It is
// anti-monotonic (a super-pattern has at least as many nodes).
type Size struct{}

// Name implements Measure.
func (Size) Name() string { return "size" }

// AntiMonotonic implements Measure.
func (Size) AntiMonotonic() bool { return true }

// Score implements Measure.
func (Size) Score(_ *Context, ex *pattern.Explanation) Score {
	return Score{-float64(ex.P.NumVars())}
}

// RandomWalk is the electrical-current measure of Section 4.1: the
// pattern is a network of unit resistors and the score is the current
// delivered between the targets (effective conductance). It is neither
// monotonic nor anti-monotonic: parallel structure raises it, serial
// structure lowers it.
type RandomWalk struct{}

// Name implements Measure.
func (RandomWalk) Name() string { return "random-walk" }

// AntiMonotonic implements Measure.
func (RandomWalk) AntiMonotonic() bool { return false }

// Score implements Measure.
func (RandomWalk) Score(_ *Context, ex *pattern.Explanation) Score {
	p := ex.P
	n := p.NumVars()
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for _, e := range p.Edges() {
		w[e.U][e.V]++
		w[e.V][e.U]++
	}
	return Score{electric.Conductance(n, w, int(pattern.Start), int(pattern.End))}
}

// Count is M_count: the number of distinct instances (Section 4.2). It
// is neither monotonic nor anti-monotonic.
type Count struct{}

// Name implements Measure.
func (Count) Name() string { return "count" }

// AntiMonotonic implements Measure.
func (Count) AntiMonotonic() bool { return false }

// Score implements Measure.
func (Count) Score(_ *Context, ex *pattern.Explanation) Score {
	return Score{float64(ex.Count())}
}

// Monocount is M_monocount: the minimum over non-target variables of the
// number of distinct entities bound to the variable, overridden to 1 for
// direct-edge patterns (Section 4.2). It is anti-monotonic — the paper's
// extension of single-graph support — so it drives the Theorem 4 top-k
// pruning.
type Monocount struct{}

// Name implements Measure.
func (Monocount) Name() string { return "monocount" }

// AntiMonotonic implements Measure.
func (Monocount) AntiMonotonic() bool { return true }

// Score implements Measure.
func (Monocount) Score(_ *Context, ex *pattern.Explanation) Score {
	return Score{float64(ex.Monocount())}
}

// Combined is a lexicographic combination: primary score first, secondary
// as tie-break. The paper's size+monocount and size+local-dist rows of
// Table 1 are Combined{Size, Monocount} and Combined{Size,
// LocalPosition}.
type Combined struct {
	Primary, Secondary Measure
}

// Name implements Measure.
func (c Combined) Name() string { return c.Primary.Name() + "+" + c.Secondary.Name() }

// AntiMonotonic implements Measure: a lexicographic combination is
// anti-monotonic iff both components are.
func (c Combined) AntiMonotonic() bool {
	return c.Primary.AntiMonotonic() && c.Secondary.AntiMonotonic()
}

// Score implements Measure.
func (c Combined) Score(ctx *Context, ex *pattern.Explanation) Score {
	return append(append(Score{}, c.Primary.Score(ctx, ex)...), c.Secondary.Score(ctx, ex)...)
}

// ScoreWithLimit implements Limited when the secondary measure supports
// pruning: the secondary is only evaluated when the primary ties the
// threshold's primary component, and then with the residual limit. This
// is the paper's observation that combining a cheap primary index with a
// distributional tie-break is several times faster than the
// distributional measure alone.
func (c Combined) ScoreWithLimit(ctx *Context, ex *pattern.Explanation, threshold Score) (Score, bool) {
	ps := c.Primary.Score(ctx, ex)
	if threshold == nil {
		return append(append(Score{}, ps...), scoreOf(c.Secondary, ctx, ex)...), true
	}
	pt := threshold[:min(len(ps), len(threshold))]
	switch ps.Cmp(pt) {
	case -1:
		return nil, false // primary already loses
	case 1:
		return append(append(Score{}, ps...), scoreOf(c.Secondary, ctx, ex)...), true
	}
	// Primary ties: the secondary decides, and may prune against the
	// remaining threshold components.
	rest := Score(threshold[min(len(ps), len(threshold)):])
	if lim, ok := c.Secondary.(Limited); ok {
		ss, ok2 := lim.ScoreWithLimit(ctx, ex, rest)
		if !ok2 {
			return nil, false
		}
		return append(append(Score{}, ps...), ss...), true
	}
	ss := c.Secondary.Score(ctx, ex)
	return append(append(Score{}, ps...), ss...), true
}

func scoreOf(m Measure, ctx *Context, ex *pattern.Explanation) Score {
	return m.Score(ctx, ex)
}

// CountOracle recomputes M_count with the independent matcher instead of
// the enumerated instance list; tests use it to cross-check instance
// propagation, and distributional measures use the same matcher on other
// entity pairs. With an evaluator in the context the count is memoised
// by (pattern key, pair).
func CountOracle(ctx *Context, ex *pattern.Explanation) int {
	if ev := ctx.Eval; ev != nil {
		n, err := ev.Count(ctx.Context(), ex.P, ctx.Start, ctx.End)
		if err == nil {
			return n
		}
	}
	// A cancelled (or budget-expired) context must not fall through to
	// the uninterruptible matcher: return an incomplete value — callers
	// observing a done context discard the score (the rank layer's
	// contract), so the shortcut is never visible in results.
	if ctx.Context().Err() != nil {
		return 0
	}
	return match.Count(ctx.G, ex.P, ctx.Start, ctx.End)
}
