package measure

import (
	"math"
	"testing"
	"testing/quick"

	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/pattern"
)

func sampleCtx(t *testing.T, start, end string) (*Context, []*pattern.Explanation) {
	t.Helper()
	g := kbgen.Sample()
	s := g.NodeByName(start)
	e := g.NodeByName(end)
	if s == kb.InvalidNode || e == kb.InvalidNode {
		t.Fatalf("missing entities %s/%s", start, end)
	}
	es := enumerate.Explanations(g, s, e, enumerate.Config{
		PathAlg: enumerate.PathPrioritized, UnionAlg: enumerate.UnionPrune,
	})
	return &Context{G: g, Start: s, End: e}, es
}

func TestScoreCmp(t *testing.T) {
	cases := []struct {
		a, b Score
		want int
	}{
		{Score{1}, Score{2}, -1},
		{Score{2}, Score{1}, 1},
		{Score{1, 5}, Score{1, 5}, 0},
		{Score{1, 5}, Score{1, 4}, 1},
		{Score{-3, 0}, Score{-3}, 0}, // missing trailing = 0
		{Score{-3, -1}, Score{-3}, -1},
		{nil, nil, 0},
	}
	for i, tc := range cases {
		if got := tc.a.Cmp(tc.b); got != tc.want {
			t.Errorf("case %d: Cmp = %d, want %d", i, got, tc.want)
		}
		if (tc.want < 0) != tc.a.Less(tc.b) {
			t.Errorf("case %d: Less inconsistent with Cmp", i)
		}
	}
}

func TestQuickScoreCmpAntisymmetric(t *testing.T) {
	f := func(a, b []float64) bool {
		sa, sb := Score(a), Score(b)
		return sa.Cmp(sb) == -sb.Cmp(sa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeMeasure(t *testing.T) {
	ctx, es := sampleCtx(t, "brad_pitt", "angelina_jolie")
	for _, ex := range es {
		s := Size{}.Score(ctx, ex)
		if len(s) != 1 || s[0] != -float64(ex.P.NumVars()) {
			t.Fatalf("size score = %v for %d vars", s, ex.P.NumVars())
		}
	}
	if !(Size{}).AntiMonotonic() {
		t.Error("size must be anti-monotonic")
	}
}

func TestCountAndMonocountScores(t *testing.T) {
	ctx, es := sampleCtx(t, "brad_pitt", "julia_roberts")
	g := ctx.G
	star := g.LabelByName(kbgen.RelStarring)
	costarKey := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
	}).CanonicalKey()
	found := false
	for _, ex := range es {
		if ex.P.CanonicalKey() != costarKey {
			continue
		}
		found = true
		// Brad and Julia co-star in 3 sample films.
		if c := (Count{}).Score(ctx, ex); c[0] != 3 {
			t.Errorf("costar count = %v, want 3", c)
		}
		if m := (Monocount{}).Score(ctx, ex); m[0] != 3 {
			t.Errorf("costar monocount = %v, want 3", m)
		}
		// The independent oracle agrees with the enumerated count.
		if o := CountOracle(ctx, ex); o != 3 {
			t.Errorf("count oracle = %d, want 3", o)
		}
	}
	if !found {
		t.Fatal("costar explanation not enumerated")
	}
	if (Count{}).AntiMonotonic() {
		t.Error("count is not anti-monotonic (paper, Section 4.2)")
	}
	if !(Monocount{}).AntiMonotonic() {
		t.Error("monocount must be anti-monotonic")
	}
}

func TestRandomWalkMeasure(t *testing.T) {
	ctx, _ := sampleCtx(t, "brad_pitt", "angelina_jolie")
	g := ctx.G
	star := g.LabelByName(kbgen.RelStarring)
	spouse := g.LabelByName(kbgen.RelSpouse)

	direct := pattern.MustNew(g, 2, []pattern.Edge{
		{U: pattern.Start, V: pattern.End, Label: spouse},
	})
	wedge := pattern.MustNew(g, 3, []pattern.Edge{
		{U: 2, V: pattern.Start, Label: star}, {U: 2, V: pattern.End, Label: star},
	})
	exDirect := pattern.NewExplanation(direct, []pattern.Instance{{ctx.Start, ctx.End}})
	exWedge := pattern.NewExplanation(wedge, []pattern.Instance{{ctx.Start, ctx.End, 0}})

	sd := RandomWalk{}.Score(ctx, exDirect)
	sw := RandomWalk{}.Score(ctx, exWedge)
	if !(sd[0] > sw[0]) {
		t.Errorf("direct edge (%v) must deliver more current than a 2-hop wedge (%v)", sd, sw)
	}
	if math.Abs(sd[0]-1) > 1e-9 || math.Abs(sw[0]-0.5) > 1e-9 {
		t.Errorf("conductances: direct %v (want 1), wedge %v (want 0.5)", sd[0], sw[0])
	}
	if (RandomWalk{}).AntiMonotonic() {
		t.Error("random walk is not anti-monotonic")
	}
}

func TestCombinedLexicographic(t *testing.T) {
	ctx, es := sampleCtx(t, "brad_pitt", "angelina_jolie")
	combo := Combined{Primary: Size{}, Secondary: Monocount{}}
	if combo.Name() != "size+monocount" {
		t.Errorf("combo name = %q", combo.Name())
	}
	if !combo.AntiMonotonic() {
		t.Error("size+monocount must be anti-monotonic")
	}
	if (Combined{Primary: Size{}, Secondary: Count{}}).AntiMonotonic() {
		t.Error("size+count must not be anti-monotonic")
	}
	for _, ex := range es {
		s := combo.Score(ctx, ex)
		if len(s) != 2 {
			t.Fatalf("combined score has %d components", len(s))
		}
		if s[0] != -float64(ex.P.NumVars()) {
			t.Fatalf("primary component wrong: %v", s)
		}
	}
}

func TestCombinedScoreWithLimit(t *testing.T) {
	ctx, es := sampleCtx(t, "brad_pitt", "angelina_jolie")
	combo := Combined{Primary: Size{}, Secondary: LocalPosition{}}
	for _, ex := range es {
		want := combo.Score(ctx, ex)
		// Nil threshold: full score.
		got, ok := combo.ScoreWithLimit(ctx, ex, nil)
		if !ok || got.Cmp(want) != 0 {
			t.Fatalf("nil threshold: got %v ok=%v, want %v", got, ok, want)
		}
		// Threshold strictly below: full score, ok.
		below := append(Score{}, want...)
		below[len(below)-1]--
		got, ok = combo.ScoreWithLimit(ctx, ex, below)
		if !ok || got.Cmp(want) != 0 {
			t.Fatalf("low threshold: got %v ok=%v, want %v", got, ok, want)
		}
		// Threshold with a strictly better primary: pruned without
		// touching the secondary.
		betterPrimary := Score{want[0] + 1, -1e18}
		if _, ok = combo.ScoreWithLimit(ctx, ex, betterPrimary); ok {
			t.Fatal("primary-dominated explanation not pruned")
		}
	}
}

func TestContextSampleStartsDeterministic(t *testing.T) {
	g := kbgen.Sample()
	a := SampleStarts(g, 20, 7)
	b := SampleStarts(g, 20, 7)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SampleStarts not deterministic")
		}
		if g.Degree(a[i]) == 0 {
			t.Fatal("sampled a zero-degree start")
		}
	}
	c := SampleStarts(g, 20, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}
