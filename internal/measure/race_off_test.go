//go:build !race

package measure

// See race_on_test.go.
const raceEnabled = false
