package measure

import (
	"context"

	"rex/internal/kb"
	"rex/internal/match"
	"rex/internal/pattern"
)

// Distribution-based measures (Section 4.3). For an explanation with
// aggregate value A (we use M_count, as in the paper's SQL example), the
// position measure counts how many competing entity pairs achieve an
// aggregate strictly greater than A: position 0 means no pair beats the
// explanation — maximally rare, maximally interesting. Scores negate the
// position so that greater remains more interesting.
//
// The local distribution varies only the end entity; the global
// distribution varies both and is estimated from the local distributions
// of sampled start entities (100 in the paper, Section 5.3.2).

// LocalPosition is M_position over the local distribution D_l.
type LocalPosition struct{}

// Name implements Measure.
func (LocalPosition) Name() string { return "local-dist" }

// AntiMonotonic implements Measure: position is not anti-monotonic (the
// paper notes distribution-based measures are not subject to the
// Theorem 4 pruning).
func (LocalPosition) AntiMonotonic() bool { return false }

// Score implements Measure.
func (m LocalPosition) Score(ctx *Context, ex *pattern.Explanation) Score {
	s, _ := m.ScoreWithLimit(ctx, ex, nil)
	return s
}

// ScoreWithLimit implements Limited: computation aborts once the position
// provably exceeds the threshold's implied limit — the SQL "LIMIT p"
// optimisation of Section 5.3.2.
func (LocalPosition) ScoreWithLimit(ctx *Context, ex *pattern.Explanation, threshold Score) (Score, bool) {
	limit := -1
	if len(threshold) > 0 {
		// score = -position, so the score drops strictly below the
		// threshold exactly when position > -threshold[0]; positions
		// reaching the limit itself (a tie) are computed in full. A
		// positive threshold is unreachable (positions are ≥ 0):
		// prune immediately.
		if threshold[0] > 0 {
			return nil, false
		}
		limit = int(-threshold[0])
	}
	a := ex.Count()
	pos, ok := localPosition(ctx, ex.P, ctx.Start, a, limit)
	if !ok {
		return nil, false
	}
	return Score{-float64(pos)}, true
}

// localPosition routes one local-position evaluation: through the
// shared-computation evaluator when the context carries one (memoised
// tables, prefix-shared path walks), through the streaming matcher
// otherwise. Both routes return identical positions and identical
// pruning decisions.
func localPosition(ctx *Context, p *pattern.Pattern, start kb.NodeID, a, limit int) (pos int, ok bool) {
	if ev := ctx.Eval; ev != nil {
		pos, ok, err := ev.LocalPosition(ctx.Context(), p, start, a, limit)
		if err != nil {
			return 0, false
		}
		return pos, ok
	}
	return streamLocalPosition(ctx.Context(), ctx.G, p, start, a, limit)
}

// streamLocalPosition counts the end entities whose instance count with
// the given start strictly exceeds a. When limit ≥ 0 and the count of
// such entities exceeds limit, enumeration stops and ok=false is
// returned. Cancellation of cctx also aborts with ok=false; the caller
// is expected to notice the done context and discard the result.
func streamLocalPosition(cctx context.Context, g *kb.Graph, p *pattern.Pattern, start kb.NodeID, a, limit int) (pos int, ok bool) {
	counts := make(map[kb.NodeID]int)
	exceeded := 0
	aborted := false
	err := match.ForEachContext(cctx, g, p, start, kb.InvalidNode, func(in pattern.Instance) bool {
		endv := in[pattern.End]
		counts[endv]++
		if counts[endv] == a+1 { // just crossed the bar
			exceeded++
			if limit >= 0 && exceeded > limit {
				aborted = true
				return false
			}
		}
		return true
	})
	if aborted || err != nil {
		return 0, false
	}
	return exceeded, true
}

// GlobalPosition is M_position over the (estimated) global distribution
// D_g: the sum of local positions over the sampled start entities in
// Context.SampleStarts. With no samples configured it degrades to the
// local measure.
type GlobalPosition struct{}

// Name implements Measure.
func (GlobalPosition) Name() string { return "global-dist" }

// AntiMonotonic implements Measure.
func (GlobalPosition) AntiMonotonic() bool { return false }

// Score implements Measure.
func (m GlobalPosition) Score(ctx *Context, ex *pattern.Explanation) Score {
	s, _ := m.ScoreWithLimit(ctx, ex, nil)
	return s
}

// ScoreWithLimit implements Limited: the running sum of per-sample
// positions stops as soon as it exceeds the threshold's implied limit.
func (GlobalPosition) ScoreWithLimit(ctx *Context, ex *pattern.Explanation, threshold Score) (Score, bool) {
	limit := -1
	if len(threshold) > 0 {
		if threshold[0] > 0 {
			return nil, false // positions are ≥ 0; score cannot reach
		}
		limit = int(-threshold[0])
	}
	a := ex.Count()
	starts := ctx.SampleStarts
	if len(starts) == 0 {
		starts = []kb.NodeID{ctx.Start}
	}
	total := 0
	cctx := ctx.Context()
	for _, s := range starts {
		if cctx.Err() != nil {
			return nil, false
		}
		rem := -1
		if limit >= 0 {
			rem = limit - total
			if rem < 0 {
				return nil, false
			}
		}
		pos, ok := localPosition(ctx, ex.P, s, a, rem)
		if !ok {
			return nil, false
		}
		total += pos
	}
	if limit >= 0 && total > limit {
		return nil, false
	}
	return Score{-float64(total)}, true
}

// SampleStarts picks n deterministic start entities for global
// distribution estimation: entities with non-zero degree, chosen by a
// fixed stride over the node space seeded by the query pair so repeated
// runs agree. The paper samples 100 random start entities.
func SampleStarts(g *kb.Graph, n int, seed int64) []kb.NodeID {
	return sampleStarts(g, "", n, seed)
}

// SampleStartsOfType is SampleStarts restricted to entities of one type.
// Comparing a pattern's aggregate against starts of the query entity's
// own type concentrates the sample where the pattern can match at all —
// with a typed knowledge base, a "starring" pattern rooted at a genre
// contributes nothing but noise to the estimate.
func SampleStartsOfType(g *kb.Graph, typ string, n int, seed int64) []kb.NodeID {
	return sampleStarts(g, typ, n, seed)
}

func sampleStarts(g *kb.Graph, typ string, n int, seed int64) []kb.NodeID {
	if n <= 0 {
		n = 100
	}
	total := g.NumNodes()
	if total == 0 {
		return nil
	}
	out := make([]kb.NodeID, 0, n)
	// Deterministic linear-congruential walk over node IDs; cheap and
	// seedable without pulling math/rand into the measure layer.
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for attempts := 0; len(out) < n && attempts < 200*n; attempts++ {
		x = x*6364136223846793005 + 1442695040888963407
		id := kb.NodeID(x % uint64(total))
		if g.Degree(id) == 0 {
			continue
		}
		if typ != "" && g.Node(id).Type != typ {
			continue
		}
		out = append(out, id)
	}
	return out
}
