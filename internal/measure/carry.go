// Cross-snapshot memo carry-over. Rebuilding the evaluator on every hot
// swap is what keeps memos sound — but it also means a steady trickle
// of writes keeps the Zipf head permanently cold. Carry-over recovers
// the warmth without weakening the soundness rule: a fresh evaluator
// holds a severable link to its predecessor plus the delta's
// touched-label set, and on a memo miss it consults the predecessor
// before computing. A predecessor hit is promoted into the new
// evaluator's own shards only when it provably cannot observe the
// delta:
//
//   - Match counting (Count, CountByEnd) inspects exactly the edges
//     whose labels appear in the pattern, plus node identity for
//     injectivity. Node IDs are append-only across generations and
//     entity types never enter matching, so if none of the pattern's
//     labels had an edge added or removed, every instance set — and
//     therefore every count and per-end table — is unchanged.
//   - A prefix walk traverses only edges with the step sequence's
//     labels, so the same label test covers cached walk levels.
//
// When in doubt, the link answers nothing and the memo is recomputed;
// carry-over can change cost, never values. The caller that builds
// generation n+1 severs generation n's link (DropCarry), so retired
// evaluators form no chain and at most two generations of memos are
// live at once. Promoted tables and walk sets are shared by reference —
// both are immutable once stored — and reads of the predecessor go
// through its own shard locks, so carry is safe while old-snapshot
// readers still query the predecessor.

package measure

import (
	"rex/internal/kb"
	"rex/internal/pattern"
)

// carryLink ties a fresh evaluator to its predecessor: memos of the
// previous generation may be promoted when their pattern's labels avoid
// the touched set.
type carryLink struct {
	prev    *Evaluator
	touched map[kb.LabelID]struct{}
}

// NewEvaluatorFrom builds an evaluator over g seeded with a carry link
// to the previous generation's evaluator. touched is the set of labels
// with edges added or removed by the delta separating the two
// generations; memos whose patterns avoid it are promoted on first
// miss. A nil prev degrades to NewEvaluator. The caller is responsible
// for only linking generations related by a known delta — and for
// severing prev's own link (prev.DropCarry) so the chain stays at one
// hop.
func NewEvaluatorFrom(g *kb.Graph, prev *Evaluator, touched map[kb.LabelID]struct{}) *Evaluator {
	ev := NewEvaluator(g)
	if prev != nil {
		ev.carry.Store(&carryLink{prev: prev, touched: touched})
	}
	return ev
}

// DropCarry severs the link to the predecessor evaluator, releasing its
// memos to the collector. Safe to call concurrently with queries; a
// query that already loaded the link finishes its one lookup against
// the (still immutable, still lock-guarded) predecessor.
func (ev *Evaluator) DropCarry() { ev.carry.Store(nil) }

// Promotions returns the number of predecessor memos promoted into this
// evaluator — the carry-over effectiveness counter surfaced in /stats.
func (ev *Evaluator) Promotions() uint64 { return ev.promotions.Load() }

// patternUntouched reports whether none of the pattern's edge labels is
// in the touched set — the promotion soundness test.
func patternUntouched(p *pattern.Pattern, touched map[kb.LabelID]struct{}) bool {
	for _, e := range p.Edges() {
		if _, hit := touched[e.Label]; hit {
			return false
		}
	}
	return true
}

// stepsUntouched is patternUntouched over a path step sequence.
func stepsUntouched(steps []pattern.PathStep, touched map[kb.LabelID]struct{}) bool {
	for _, st := range steps {
		if _, hit := touched[st.Label]; hit {
			return false
		}
	}
	return true
}

// carriedCount consults the predecessor for a pair-count memo.
func (ev *Evaluator) carriedCount(p *pattern.Pattern, key pairCountKey) (int, bool) {
	link := ev.carry.Load()
	if link == nil || !patternUntouched(p, link.touched) {
		return 0, false
	}
	sh := link.prev.shardFor(key.p)
	sh.mu.Lock()
	n, ok := sh.pairs[key]
	sh.mu.Unlock()
	return n, ok
}

// carriedTable consults the predecessor for a per-end count table. The
// returned map is shared by reference; tables are immutable once
// stored, so both generations may serve it concurrently.
func (ev *Evaluator) carriedTable(p *pattern.Pattern, key tableKey) (map[kb.NodeID]int, bool) {
	link := ev.carry.Load()
	if link == nil || !patternUntouched(p, link.touched) {
		return nil, false
	}
	sh := link.prev.shardFor(key.p)
	sh.mu.Lock()
	t, ok := sh.tables[key]
	sh.mu.Unlock()
	return t, ok
}

// carriedWalks consults the predecessor for a cached walk level.
func (ev *Evaluator) carriedWalks(steps []pattern.PathStep, start kb.NodeID, key stepSeqKey) (walkSet, bool) {
	link := ev.carry.Load()
	if link == nil || !stepsUntouched(steps, link.touched) {
		return walkSet{}, false
	}
	return link.prev.prefixes.peek(start, key)
}

// peek is a side-effect-free lookup: no bucket creation, no LRU
// reordering. Used only by carry, against the predecessor.
func (pc *prefixCache) peek(start kb.NodeID, key stepSeqKey) (walkSet, bool) {
	ps := pc.shardFor(start)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	sp, ok := ps.starts[start]
	if !ok {
		return walkSet{}, false
	}
	w, ok := sp.levels[key]
	return w, ok
}
