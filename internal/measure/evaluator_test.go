package measure

import (
	"context"
	"fmt"
	"testing"

	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/match"
	"rex/internal/pattern"
)

func evalFixture(t *testing.T) (*kb.Graph, *Evaluator, []*pattern.Explanation, kb.NodeID, kb.NodeID) {
	t.Helper()
	g := kbgen.Sample()
	g.Freeze()
	s := g.NodeByName("brad_pitt")
	e := g.NodeByName("angelina_jolie")
	es := enumerate.Explanations(g, s, e, enumerate.Config{
		MaxPatternSize: 5,
		PathAlg:        enumerate.PathPrioritized,
		UnionAlg:       enumerate.UnionPrune,
	})
	if len(es) == 0 {
		t.Fatal("no explanations on the sample KB")
	}
	return g, NewEvaluator(g), es, s, e
}

// TestEvaluatorCountByEndMatchesMatcher checks the shared-computation
// route — prefix walks for paths, memoised matcher tables otherwise —
// against the independent matcher for every enumerated pattern.
func TestEvaluatorCountByEndMatchesMatcher(t *testing.T) {
	g, ev, es, s, _ := evalFixture(t)
	ctx := context.Background()
	paths, others := 0, 0
	for _, ex := range es {
		if _, isPath := ex.P.PathSteps(); isPath {
			paths++
		} else {
			others++
		}
		got, err := ev.CountByEnd(ctx, ex.P, s)
		if err != nil {
			t.Fatalf("CountByEnd(%v): %v", ex.P, err)
		}
		want := match.CountByEnd(g, ex.P, s)
		if len(got) != len(want) {
			t.Fatalf("pattern %v: %d ends, matcher finds %d", ex.P, len(got), len(want))
		}
		for end, c := range want {
			if got[end] != c {
				t.Fatalf("pattern %v end %s: count %d, matcher %d", ex.P, g.NodeName(end), got[end], c)
			}
		}
	}
	if paths == 0 || others == 0 {
		t.Fatalf("fixture must exercise both routes: %d path, %d non-path patterns", paths, others)
	}
}

// TestEvaluatorCountMatchesMatcher checks the memoised pair counts.
func TestEvaluatorCountMatchesMatcher(t *testing.T) {
	g, ev, es, s, e := evalFixture(t)
	ctx := context.Background()
	for _, ex := range es {
		got, err := ev.Count(ctx, ex.P, s, e)
		if err != nil {
			t.Fatal(err)
		}
		if want := match.Count(g, ex.P, s, e); got != want {
			t.Fatalf("pattern %v: count %d, matcher %d", ex.P, got, want)
		}
		// Second call must hit the memo and agree.
		again, err := ev.Count(ctx, ex.P, s, e)
		if err != nil || again != got {
			t.Fatalf("memoised count diverged: %d vs %d (%v)", again, got, err)
		}
	}
}

// TestEvaluatorLocalPositionParity checks the evaluator's position
// computation — including its pruning decisions — against the streaming
// implementation for a sweep of limits.
func TestEvaluatorLocalPositionParity(t *testing.T) {
	g, ev, es, s, _ := evalFixture(t)
	ctx := context.Background()
	for _, ex := range es {
		a := ex.Count()
		for _, limit := range []int{-1, 0, 1, 2, 10} {
			gotPos, gotOK, err := ev.LocalPosition(ctx, ex.P, s, a, limit)
			if err != nil {
				t.Fatal(err)
			}
			wantPos, wantOK := streamLocalPosition(ctx, g, ex.P, s, a, limit)
			if gotOK != wantOK || (gotOK && gotPos != wantPos) {
				t.Fatalf("pattern %v limit %d: evaluator (%d,%v), streaming (%d,%v)",
					ex.P, limit, gotPos, gotOK, wantPos, wantOK)
			}
		}
	}
}

// TestEvaluatorTableIsMemoised checks that the per-(pattern,start) table
// is computed once and shared.
func TestEvaluatorTableIsMemoised(t *testing.T) {
	_, ev, es, s, _ := evalFixture(t)
	ctx := context.Background()
	p := es[0].P
	t1, err := ev.CountByEnd(ctx, p, s)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ev.CountByEnd(ctx, p, s)
	if err != nil {
		t.Fatal(err)
	}
	// Same underlying map: a (test-only) write through one is visible
	// through the other. Restore it immediately.
	for k, v := range t1 {
		t1[k] = v + 1
		if t2[k] != v+1 {
			t.Fatal("second CountByEnd did not return the memoised table")
		}
		t1[k] = v
		break
	}
}

// TestEvaluatorCancellation checks that a cancelled context aborts
// evaluation without poisoning the memo.
func TestEvaluatorCancellation(t *testing.T) {
	_, ev, es, s, _ := evalFixture(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	p := es[len(es)-1].P
	if _, err := ev.CountByEnd(cancelled, p, s); err == nil {
		// Tiny patterns can finish before the first cancellation check;
		// that is fine — the contract is only that an error is never
		// memoised. Nothing to assert in that case.
		t.Log("evaluation completed before the cancellation check interval")
	}
	counts, err := ev.CountByEnd(context.Background(), p, s)
	if err != nil || counts == nil {
		t.Fatalf("post-cancellation evaluation failed: %v", err)
	}
}

// TestScoresIdenticalWithAndWithoutEvaluator locks the central
// correctness bar: every measure scores every explanation identically
// whether or not the context carries an evaluator.
func TestScoresIdenticalWithAndWithoutEvaluator(t *testing.T) {
	g, ev, es, s, e := evalFixture(t)
	bare := &Context{G: g, Start: s, End: e}
	shared := &Context{G: g, Start: s, End: e, Eval: ev}
	bare.SampleStarts = SampleStarts(g, 8, 7)
	shared.SampleStarts = bare.SampleStarts
	measures := []Measure{
		Size{}, RandomWalk{}, Count{}, Monocount{},
		LocalPosition{}, GlobalPosition{},
		LocalDeviation{}, GlobalDeviation{},
		Combined{Primary: Size{}, Secondary: LocalPosition{}},
		Combined{Primary: Size{}, Secondary: Monocount{}},
	}
	for _, m := range measures {
		for _, ex := range es {
			got := m.Score(shared, ex)
			want := m.Score(bare, ex)
			if got.Cmp(want) != 0 {
				t.Fatalf("%s on %v: evaluator score %v, bare score %v", m.Name(), ex.P, got, want)
			}
		}
	}
}

// TestEvaluatorMemoLookupAllocFree pins the sharded-evaluator contract
// that splitting the memos across lock shards added no steady-state
// allocations: once a (pattern, pair) count and a (pattern, start)
// table are memoised, re-reading them is pure shard selection plus a
// map lookup.
func TestEvaluatorMemoLookupAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations; counts are not meaningful")
	}
	_, ev, es, s, e := evalFixture(t)
	ctx := context.Background()
	for _, ex := range es {
		if _, err := ev.Count(ctx, ex.P, s, e); err != nil {
			t.Fatal(err)
		}
		if _, err := ev.CountByEnd(ctx, ex.P, s); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, ex := range es {
			if _, err := ev.Count(ctx, ex.P, s, e); err != nil {
				t.Fatal(err)
			}
			if _, err := ev.CountByEnd(ctx, ex.P, s); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("memoised evaluator lookups allocate %.0f times per sweep; want 0", allocs)
	}
}

// TestEvaluatorShardedParity drives every enumerated pattern through
// Count/CountByEnd/LocalPosition on a cold evaluator from many
// goroutines at once (run with -race) and checks each result against a
// serial reference evaluator: sharding partitions the locks, never the
// answers.
func TestEvaluatorShardedParity(t *testing.T) {
	g, ev, es, s, e := evalFixture(t)
	ref := NewEvaluator(g)
	ctx := context.Background()

	type res struct {
		count int
		ends  int
		pos   int
	}
	want := make([]res, len(es))
	for i, ex := range es {
		c, err := ref.Count(ctx, ex.P, s, e)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := ref.CountByEnd(ctx, ex.P, s)
		if err != nil {
			t.Fatal(err)
		}
		pos, ok, err := ref.LocalPosition(ctx, ex.P, s, c, -1)
		if err != nil || !ok {
			t.Fatalf("reference LocalPosition: pos=%d ok=%v err=%v", pos, ok, err)
		}
		want[i] = res{count: c, ends: len(tab), pos: pos}
	}

	const goroutines = 8
	errs := make(chan error, goroutines)
	for gr := 0; gr < goroutines; gr++ {
		go func(gr int) {
			for round := 0; round < 3; round++ {
				for i, ex := range es {
					c, err := ev.Count(ctx, ex.P, s, e)
					if err != nil {
						errs <- err
						return
					}
					tab, err := ev.CountByEnd(ctx, ex.P, s)
					if err != nil {
						errs <- err
						return
					}
					pos, ok, err := ev.LocalPosition(ctx, ex.P, s, c, -1)
					if err != nil || !ok {
						errs <- fmt.Errorf("LocalPosition: ok=%v err=%v", ok, err)
						return
					}
					if c != want[i].count || len(tab) != want[i].ends || pos != want[i].pos {
						errs <- fmt.Errorf("pattern %d: concurrent (%d,%d,%d) != serial (%d,%d,%d)",
							i, c, len(tab), pos, want[i].count, want[i].ends, want[i].pos)
						return
					}
				}
			}
			errs <- nil
		}(gr)
	}
	for gr := 0; gr < goroutines; gr++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
