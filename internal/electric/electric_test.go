package electric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func weights(n int, edges [][2]int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for _, e := range edges {
		w[e[0]][e[1]]++
		w[e[1]][e[0]]++
	}
	return w
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSingleResistor(t *testing.T) {
	w := weights(2, [][2]int{{0, 1}})
	if c := Conductance(2, w, 0, 1); !almost(c, 1) {
		t.Fatalf("single unit resistor: %v, want 1", c)
	}
}

func TestParallelResistors(t *testing.T) {
	w := weights(2, [][2]int{{0, 1}, {0, 1}, {0, 1}})
	if c := Conductance(2, w, 0, 1); !almost(c, 3) {
		t.Fatalf("three parallel resistors: %v, want 3", c)
	}
}

func TestSeriesResistors(t *testing.T) {
	// 0-2-1: two in series → 0.5; 0-2-3-1: three in series → 1/3.
	if c := Conductance(3, weights(3, [][2]int{{0, 2}, {2, 1}}), 0, 1); !almost(c, 0.5) {
		t.Fatalf("two in series: %v, want 0.5", c)
	}
	if c := Conductance(4, weights(4, [][2]int{{0, 2}, {2, 3}, {3, 1}}), 0, 1); !almost(c, 1.0/3) {
		t.Fatalf("three in series: %v, want 1/3", c)
	}
}

func TestWheatstoneBalanced(t *testing.T) {
	// Balanced bridge: 0-2, 0-3, 2-1, 3-1, 2-3. The bridge resistor
	// carries no current; conductance is 1 (two series pairs in
	// parallel: 0.5 + 0.5).
	w := weights(4, [][2]int{{0, 2}, {0, 3}, {2, 1}, {3, 1}, {2, 3}})
	if c := Conductance(4, w, 0, 1); !almost(c, 1) {
		t.Fatalf("balanced wheatstone: %v, want 1", c)
	}
}

func TestParallelSeriesMix(t *testing.T) {
	// Direct edge plus a 2-hop detour: 1 + 0.5.
	w := weights(3, [][2]int{{0, 1}, {0, 2}, {2, 1}})
	if c := Conductance(3, w, 0, 1); !almost(c, 1.5) {
		t.Fatalf("direct+detour: %v, want 1.5", c)
	}
}

func TestDisconnected(t *testing.T) {
	w := weights(4, [][2]int{{0, 2}, {1, 3}})
	if c := Conductance(4, w, 0, 1); c != 0 {
		t.Fatalf("disconnected pair: %v, want 0", c)
	}
}

func TestDegenerateInputs(t *testing.T) {
	w := weights(2, [][2]int{{0, 1}})
	if Conductance(2, w, 0, 0) != 0 {
		t.Error("s == t must be 0")
	}
	if Conductance(2, w, -1, 1) != 0 || Conductance(2, w, 0, 5) != 0 {
		t.Error("out-of-range endpoints must be 0")
	}
}

// TestQuickParallelEdgeIncreasesConductance property-checks monotonicity:
// adding an edge anywhere never decreases s–t conductance (Rayleigh's
// monotonicity law).
func TestQuickRayleighMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		var edges [][2]int
		// Random connected-ish base: a path 0..n-1 plus noise.
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{i - 1, i})
		}
		for k := 0; k < rng.Intn(4); k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		before := Conductance(n, weights(n, edges), 0, 1)
		// Add one more random edge.
		for {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
				break
			}
		}
		after := Conductance(n, weights(n, edges), 0, 1)
		return after >= before-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSymmetry property-checks that conductance is symmetric in its
// endpoints.
func TestQuickSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		var edges [][2]int
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{i - 1, i})
		}
		for k := 0; k < rng.Intn(5); k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		s, u := rng.Intn(n), rng.Intn(n)
		if s == u {
			return true
		}
		c1 := Conductance(n, weights(n, edges), s, u)
		c2 := Conductance(n, weights(n, edges), u, s)
		return math.Abs(c1-c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
