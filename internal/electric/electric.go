// Package electric computes the random-walk structural interestingness
// measure of Section 4.1: the explanation pattern is viewed as an
// electrical network in which every edge is a unit resistor (following
// the connection-subgraph work of Faloutsos, McCurley and Tomkins that
// the paper extends), and the interestingness of the pattern is the
// current delivered from the start variable to the end variable under a
// unit voltage — i.e. the effective conductance between the targets.
// Parallel explanation paths add conductance; long chains reduce it.
package electric

import "math"

// Conductance returns the effective electrical conductance between node
// s and node t of an undirected multigraph with n nodes, where weight[i][j]
// counts the unit resistors (edges) between i and j. It returns 0 when s
// and t are disconnected.
//
// The computation solves the grounded Laplacian system L'·v = e_s with
// v[t] = 0 by Gaussian elimination; the conductance is 1/v[s]. REX
// patterns have at most a dozen nodes, so cubic elimination is ideal.
func Conductance(n int, weight [][]float64, s, t int) float64 {
	if s == t || n < 2 || s < 0 || t < 0 || s >= n || t >= n {
		return 0
	}
	// Laplacian: L[i][i] = Σ_j w(i,j); L[i][j] = -w(i,j).
	lap := make([][]float64, n)
	for i := range lap {
		lap[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			w := weight[i][j]
			lap[i][i] += w
			lap[i][j] -= w
		}
	}
	// Ground node t: remove its row and column.
	idx := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != t {
			idx = append(idx, i)
		}
	}
	m := len(idx)
	a := make([][]float64, m)
	b := make([]float64, m)
	for i, ri := range idx {
		a[i] = make([]float64, m)
		for j, cj := range idx {
			a[i][j] = lap[ri][cj]
		}
		if ri == s {
			b[i] = 1 // inject unit current at s, extract at t
		}
	}
	v, ok := solve(a, b)
	if !ok {
		return 0
	}
	for i, ri := range idx {
		if ri == s {
			if v[i] <= 0 || math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				return 0
			}
			return 1 / v[i]
		}
	}
	return 0
}

// solve performs Gaussian elimination with partial pivoting on a·x = b,
// mutating its inputs. It reports false for (near-)singular systems,
// which for a grounded Laplacian means s and t are disconnected.
func solve(a [][]float64, b []float64) ([]float64, bool) {
	const eps = 1e-12
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < eps {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, true
}
