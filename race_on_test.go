//go:build race

package rex

// raceEnabled lets alloc-count tests skip themselves under the race
// detector, which adds bookkeeping allocations of its own.
const raceEnabled = true
