package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"rex"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/live"
)

// The ingest experiment measures the write path: sustained delta
// ingestion through a live rex.Store on a preset-sized KB. It reports
// three things the overlay + carry-over design claims:
//
//   - O(delta) apply: a small delta (≤100 records) swaps in orders of
//     magnitude faster than the Clone+Freeze rebuild it replaces, and
//     the store sustains a delta stream at a rate independent of KB
//     size (applies/sec, per-apply percentiles, compactions).
//   - swap-to-warm: after a swap, previously hot pairs answer from the
//     carried result cache — the p50 is a cache hit, not a recompute.
//   - carry effectiveness: the post-swap hit rate over hot pairs and
//     the cumulative carried/dropped/promotion counters.
//
// Deltas are synthetic but localized, like real extraction increments:
// each one attaches a chain of fresh entities to a low-degree anchor
// under a dedicated "ingest" label, so invalidation stays bounded and
// most of the warm working set is provably out of reach.

// ingestOptions parameterises the ingest run.
type ingestOptions struct {
	Preset string
	Seed   int64
	Deltas int // sustained-phase delta count
	Ops    int // records per delta
	Pairs  int // hot pairs for the swap-to-warm phase
}

// ingestReport is the "ingest" section of BENCH.json.
type ingestReport struct {
	Preset      string `json:"preset"`
	Seed        int64  `json:"seed"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	OpsPerDelta int    `json:"ops_per_delta"`

	// Single-delta comparison: the same parsed delta applied to the
	// same frozen graph as an overlay, as a Clone+Freeze rebuild, and
	// end to end through the store (overlay + new explainer + carry).
	OverlayMs      float64 `json:"overlay_apply_ms"`
	RebuildMs      float64 `json:"rebuild_apply_ms"`
	StoreSwapMs    float64 `json:"store_swap_ms"`
	OverlaySpeedup float64 `json:"overlay_speedup"` // rebuild / overlay
	SwapSpeedup    float64 `json:"swap_speedup"`    // rebuild / store swap

	// Swap-to-warm: hot-pair latency and hit rate on the snapshot
	// published by the delta above, answered from carried cache entries.
	HotPairs        int     `json:"hot_pairs"`
	WarmP50Ms       float64 `json:"swap_to_warm_p50_ms"`
	PostSwapHitRate float64 `json:"post_swap_hit_rate"`

	// Sustained phase: a stream of Deltas localized deltas through the
	// store, each one a full apply+swap.
	Deltas            int     `json:"deltas"`
	ApplyP50Ms        float64 `json:"apply_p50_ms"`
	ApplyP99Ms        float64 `json:"apply_p99_ms"`
	AppliesPerSec     float64 `json:"applies_per_sec"`
	OpsPerSec         float64 `json:"ops_per_sec"`
	Compactions       uint64  `json:"compactions"`
	FinalOverlayDepth int     `json:"final_overlay_depth"`
	ResultsCarried    uint64  `json:"results_carried"`
	ResultsDropped    uint64  `json:"results_dropped"`
	MemoPromotions    uint64  `json:"memo_promotions"`
}

// ingestAnchor picks a low-degree existing node to hang a delta off:
// hubs would make the invalidation ball cover half the graph, which is
// not the shape of an extraction increment.
func ingestAnchor(g *kb.Graph, rng *rand.Rand) kb.NodeID {
	best := kb.NodeID(rng.Intn(g.NumNodes()))
	for try := 0; try < 64; try++ {
		id := kb.NodeID(rng.Intn(g.NumNodes()))
		if g.Degree(id) < g.Degree(best) {
			best = id
		}
		if g.Degree(best) <= 8 {
			break
		}
	}
	return best
}

// ingestDelta builds one localized delta: a chain of fresh entities
// attached to a low-degree anchor under the "ingest" label. tag keys
// the new entity names so successive deltas never collide; withLabel
// prepends the label registration (needed exactly once per store).
func ingestDelta(g *kb.Graph, rng *rand.Rand, tag string, ops int, withLabel bool) string {
	var sb strings.Builder
	if withLabel {
		sb.WriteString("label\tingest\tU\n")
	}
	prev := g.NodeName(ingestAnchor(g, rng))
	for j := 0; 2*j+1 < ops; j++ {
		name := fmt.Sprintf("ing_%s_%d", tag, j)
		fmt.Fprintf(&sb, "node\t%s\tconcept\n", name)
		fmt.Fprintf(&sb, "edge\t%s\t%s\tingest\n", prev, name)
		prev = name
	}
	return sb.String()
}

// runIngest executes the ingest experiment into report.Ingest.
func runIngest(report *benchReport, stdout io.Writer, opt ingestOptions) error {
	genOpt, err := kbgen.PresetOptions(opt.Preset, opt.Seed)
	if err != nil {
		return err
	}
	if opt.Deltas <= 0 {
		opt.Deltas = 32
	}
	if opt.Ops <= 0 {
		opt.Ops = 100
	}
	if opt.Pairs <= 0 {
		opt.Pairs = 24
	}
	r := &ingestReport{Preset: opt.Preset, Seed: opt.Seed, OpsPerDelta: opt.Ops}
	rng := rand.New(rand.NewSource(opt.Seed + 2))

	g := kbgen.Generate(genOpt)
	st := g.Stats()
	r.Nodes, r.Edges = st.Nodes, st.Edges
	fmt.Fprintf(stdout, "ingest: %s KB: %d entities, %d relationships\n", opt.Preset, st.Nodes, st.Edges)

	// The store serves a binary-snapshot round trip of the generated
	// graph, exactly what a production deployment would load from disk.
	dir, err := os.MkdirTemp("", "rexbench-ingest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "kb.bin")
	if err := g.SaveBinary(snap); err != nil {
		return err
	}
	store, err := rex.OpenStore(snap, rex.Options{TopK: 10, MaxPatternSize: 3, CacheSize: 4096})
	if err != nil {
		return err
	}

	// Warm the hot pairs on generation 1.
	sampled := kbgen.SamplePairs(g, kbgen.PairOptions{PerBucket: (opt.Pairs + 3) / 4, Seed: opt.Seed + 1})
	seen := make(map[rex.Pair]bool, len(sampled))
	var hot []rex.Pair
	for _, p := range sampled {
		np := rex.Pair{Start: g.NodeName(p.Start), End: g.NodeName(p.End)}
		if seen[np] || len(hot) >= opt.Pairs {
			continue
		}
		seen[np] = true
		hot = append(hot, np)
	}
	if len(hot) == 0 {
		return fmt.Errorf("ingest: no hot pairs sampled")
	}
	r.HotPairs = len(hot)
	for _, p := range hot {
		if _, err := store.Current().Explainer.Explain(p.Start, p.End); err != nil {
			return fmt.Errorf("ingest: warm %s/%s: %w", p.Start, p.End, err)
		}
	}

	// Single-delta comparison on the same frozen graph: overlay apply
	// vs the Clone+Freeze rebuild it replaces. The rebuild runs once
	// (it is the expensive path being retired); the overlay apply takes
	// the best of a few runs to shave scheduler noise.
	cmp, err := live.ParseDelta(strings.NewReader(ingestDelta(g, rng, "cmp", min(opt.Ops, 100), true)))
	if err != nil {
		return err
	}
	t0 := time.Now()
	if _, _, _, err := cmp.ApplyRebuild(g); err != nil {
		return err
	}
	r.RebuildMs = msSince(t0)
	for i := 0; i < 3; i++ {
		t0 = time.Now()
		if _, _, _, err := cmp.Apply(g); err != nil {
			return err
		}
		if ms := msSince(t0); i == 0 || ms < r.OverlayMs {
			r.OverlayMs = ms
		}
	}
	// The same delta end to end through the store: overlay apply plus
	// explainer construction and cache carry-over, published as
	// generation 2.
	t0 = time.Now()
	info, err := store.Apply(strings.NewReader(ingestDelta(g, rng, "cmp", min(opt.Ops, 100), true)))
	if err != nil {
		return err
	}
	r.StoreSwapMs = msSince(t0)
	if r.OverlayMs > 0 {
		r.OverlaySpeedup = r.RebuildMs / r.OverlayMs
	}
	if r.StoreSwapMs > 0 {
		r.SwapSpeedup = r.RebuildMs / r.StoreSwapMs
	}
	fmt.Fprintf(stdout, "ingest: %d-op delta: overlay %.2fms, store swap %.2fms, rebuild %.0fms (overlay %.0fx, swap %.0fx)\n",
		min(opt.Ops, 100), r.OverlayMs, r.StoreSwapMs, r.RebuildMs, r.OverlaySpeedup, r.SwapSpeedup)

	// Swap-to-warm: the hot pairs against the just-published overlay
	// snapshot. Carried entries answer without recomputation.
	cur := store.Current()
	hits0 := cur.Explainer.CacheStats().Hits
	var warm []float64
	for _, p := range hot {
		t0 = time.Now()
		if _, err := cur.Explainer.Explain(p.Start, p.End); err != nil {
			return fmt.Errorf("ingest: post-swap %s/%s: %w", p.Start, p.End, err)
		}
		warm = append(warm, msSince(t0))
	}
	slices.Sort(warm)
	r.WarmP50Ms = percentile(warm, 50)
	r.PostSwapHitRate = float64(cur.Explainer.CacheStats().Hits-hits0) / float64(len(hot))
	fmt.Fprintf(stdout, "ingest: swap-to-warm over %d hot pairs: p50 %.3fms, hit rate %.0f%% (carried %d, dropped %d)\n",
		len(hot), r.WarmP50Ms, 100*r.PostSwapHitRate, info.ResultsCarried, info.ResultsDropped)

	// Sustained phase: a stream of localized deltas, each a full
	// apply+swap through the store.
	r.Deltas = opt.Deltas
	var lat []float64
	t0 = time.Now()
	for i := 0; i < opt.Deltas; i++ {
		d := ingestDelta(g, rng, fmt.Sprintf("s%d", i), opt.Ops, false)
		ta := time.Now()
		if _, err := store.Apply(strings.NewReader(d)); err != nil {
			return fmt.Errorf("ingest: delta %d: %w", i, err)
		}
		lat = append(lat, msSince(ta))
	}
	total := time.Since(t0).Seconds()
	slices.Sort(lat)
	r.ApplyP50Ms = percentile(lat, 50)
	r.ApplyP99Ms = percentile(lat, 99)
	r.AppliesPerSec = float64(opt.Deltas) / total
	r.OpsPerSec = float64(opt.Deltas*opt.Ops) / total
	ls := store.LiveStats()
	r.Compactions = ls.Compactions
	r.FinalOverlayDepth = ls.OverlayDepth
	r.ResultsCarried = ls.ResultsCarried
	r.ResultsDropped = ls.ResultsDropped
	r.MemoPromotions = ls.MemoPromotions
	fmt.Fprintf(stdout, "ingest: sustained %d deltas x %d ops: %.1f applies/s (%.0f ops/s), apply p50 %.2fms, p99 %.2fms, %d compactions, depth %d\n",
		opt.Deltas, opt.Ops, r.AppliesPerSec, r.OpsPerSec, r.ApplyP50Ms, r.ApplyP99Ms, r.Compactions, r.FinalOverlayDepth)

	report.Ingest = append(report.Ingest, r)
	return nil
}
