package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rex"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/serve"
	rexsync "rex/internal/sync"
)

// The sync experiment prices replica catch-up: how long a cold peer
// takes to reach the fleet tip as a function of how far behind it is,
// through each of the two transfer paths. The wal rows replay the
// CRC-framed tail (the source keeps every record), so cost scales with
// lag depth; the snapshot rows force the full-checkpoint path (the
// source checkpoints every delta, so any lag is below the GC horizon)
// and cost scales with KB size instead. The crossover between the two
// columns is the number the router's sync kick is betting on.

// syncOptions parameterises one sync run (both modes share them).
type syncOptions struct {
	Preset string
	Seed   int64
	Depths []int // lag depths (deltas behind) to measure
	Ops    int   // records per delta
}

// syncReport is one (mode, lag depth) row of the "sync" section of
// BENCH.json.
type syncReport struct {
	Preset      string `json:"preset"`
	Seed        int64  `json:"seed"`
	Mode        string `json:"mode"` // "wal" or "snapshot"
	LagDepth    int    `json:"lag_depth"`
	OpsPerDelta int    `json:"ops_per_delta"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`

	CatchupMs     float64 `json:"catchup_ms"`
	WALRecords    int     `json:"wal_records"`
	WALBytes      int64   `json:"wal_bytes"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
}

// syncModes are measured in this order so the table reads tail-replay
// first, then the full-transfer fallback it degrades to.
var syncModes = []string{"wal", "snapshot"}

// runSync executes the sync experiment into report.Sync: for every lag
// depth, boot a source replica that is depth deltas ahead, then time a
// cold peer's Engine.Sync against it through each transfer path.
func runSync(report *benchReport, stdout io.Writer, opt syncOptions) error {
	genOpt, err := kbgen.PresetOptions(opt.Preset, opt.Seed)
	if err != nil {
		return err
	}
	if len(opt.Depths) == 0 {
		opt.Depths = []int{4, 16, 64}
	}
	if opt.Ops <= 0 {
		opt.Ops = 100
	}
	g := kbgen.Generate(genOpt)
	st := g.Stats()
	fmt.Fprintf(stdout, "sync: %s KB: %d entities, %d relationships; lag depths %v x %d ops\n",
		opt.Preset, st.Nodes, st.Edges, opt.Depths, opt.Ops)

	for _, mode := range syncModes {
		for _, depth := range opt.Depths {
			r, err := runSyncOne(g, mode, depth, opt)
			if err != nil {
				return fmt.Errorf("sync: %s depth %d: %w", mode, depth, err)
			}
			r.Preset, r.Seed = opt.Preset, opt.Seed
			r.Nodes, r.Edges = st.Nodes, st.Edges
			fmt.Fprintf(stdout,
				"sync: mode=%-8s lag=%-3d catch-up %8.1fms  (%d wal records, %s wal, %s snapshot)\n",
				mode, depth, r.CatchupMs, r.WALRecords,
				fmtBytes(r.WALBytes), fmtBytes(r.SnapshotBytes))
			report.Sync = append(report.Sync, r)
		}
	}
	return nil
}

// runSyncOne measures a single catch-up: a source store depth deltas
// ahead of the shared base snapshot, served over HTTP, and a cold
// target whose engine must converge on it. In wal mode the source
// retains its whole journal; in snapshot mode it checkpoints every
// delta, so the target's from=<base> request lands below the horizon
// and the engine is forced through the full-checkpoint path.
func runSyncOne(g *kb.Graph, mode string, depth int, opt syncOptions) (*syncReport, error) {
	dir, err := os.MkdirTemp("", "rexbench-sync-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "kb.bin")
	if err := g.SaveBinary(snap); err != nil {
		return nil, err
	}

	ckptEvery := 1 << 20 // wal mode: never checkpoint, keep the whole tail
	if mode == "snapshot" {
		ckptEvery = 1 // every delta: the horizon chases the tip
	}
	src, err := rex.OpenStore(snap, rex.Options{
		TopK: 10, MaxPatternSize: 3, CacheSize: 256,
		Durability: rex.DurabilityOptions{
			Dir: filepath.Join(dir, "src"), Fsync: "off", CheckpointEvery: ckptEvery,
		},
	})
	if err != nil {
		return nil, err
	}
	defer src.Close()

	// Advance the source: the identical delta stream the ingest and wal
	// suites use, so the three sections price the same write shape.
	rng := rand.New(rand.NewSource(opt.Seed + 5))
	for i := 0; i < depth; i++ {
		d := ingestDelta(g, rng, fmt.Sprintf("s%d", i), opt.Ops, i == 0)
		if _, err := src.Apply(strings.NewReader(d)); err != nil {
			return nil, fmt.Errorf("advance source: %w", err)
		}
	}
	srv := serve.New(src, serve.Config{Timeout: 30 * time.Second})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	tgt, err := rex.OpenStore(snap, rex.Options{
		TopK: 10, MaxPatternSize: 3, CacheSize: 256,
		Durability: rex.DurabilityOptions{
			Dir: filepath.Join(dir, "tgt"), Fsync: "off", CheckpointEvery: 1 << 20,
		},
	})
	if err != nil {
		return nil, err
	}
	defer tgt.Close()
	engine, err := rexsync.New(tgt, rexsync.Config{
		Peers: []string{hs.URL}, SpoolDir: dir, AttemptTimeout: 60 * time.Second,
	})
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	rep, err := engine.Sync(context.Background(), "")
	if err != nil {
		return nil, err
	}
	wall := msSince(t0)

	sc, tc := src.Current(), tgt.Current()
	if sc.Generation != tc.Generation || sc.Fingerprint != tc.Fingerprint {
		return nil, fmt.Errorf("target did not converge: %d/%s vs source %d/%s",
			tc.Generation, tc.Fingerprint, sc.Generation, sc.Fingerprint)
	}
	if mode == "snapshot" && !rep.FullSnapshot {
		return nil, fmt.Errorf("expected the full-snapshot path, engine used the WAL tail")
	}

	r := &syncReport{
		Mode: mode, LagDepth: depth, OpsPerDelta: opt.Ops,
		CatchupMs:     wall,
		WALRecords:    rep.WALRecords,
		WALBytes:      rep.WALBytes,
		SnapshotBytes: rep.SnapshotBytes,
	}
	if rep.WALRecords > 0 && wall > 0 {
		r.RecordsPerSec = float64(rep.WALRecords) / (wall / 1000)
	}
	return r, nil
}

// fmtBytes renders a byte count compactly for the progress line.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
