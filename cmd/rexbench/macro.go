package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"rex"
	"rex/internal/kbgen"
)

// The macro experiment gives the perf trajectory a traffic-shaped
// number: instead of ns/op on the fixed sample KB, it generates a
// preset-sized synthetic KB (the million preset is ~1.2M relationships,
// the paper's scale), proves the CSR binary snapshot round-trips it at
// speed, and reports end-to-end Explain latency percentiles over
// connectedness-bucketed pairs plus sustained BatchExplain throughput.
// With a budget configured it additionally measures the anytime path
// (budgeted percentiles and truncation counts), and with a worker list
// it runs the contended mode: sustained BatchExplain at each worker
// count over serial-enumeration queries, so the numbers measure
// cross-query scaling — the lock-shard story — not intra-query fan-out.
// Everything is deterministic in the seed except wall-clock timings.

// macroOptions parameterises the macro run.
type macroOptions struct {
	Preset           string
	Seed             int64
	PerBucket        int     // pairs sampled per connectedness bucket
	Rounds           int     // latency measurements per pair
	QPSSeconds       float64 // target duration of each throughput phase (0: one round)
	BudgetMS         int64   // anytime budget, wall-clock milliseconds (0: skip budgeted phases)
	BudgetExpansions int     // anytime budget, enumeration expansions (0: none)
	Workers          []int   // contended-mode BatchExplain worker counts (empty: skip)
	CPUs             []int   // GOMAXPROCS settings for the contended mode (empty: current)
}

// macroReport is the "macro" section of BENCH.json.
type macroReport struct {
	Preset         string  `json:"preset"`
	Seed           int64   `json:"seed"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	GenerateMs     float64 `json:"generate_ms"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	SnapshotSaveMs float64 `json:"snapshot_save_ms"`
	SnapshotLoadMs float64 `json:"snapshot_load_ms"`
	Pairs          int     `json:"pairs"`
	LatencySamples int     `json:"latency_samples"`
	ExplainP50Ms   float64 `json:"explain_p50_ms"`
	ExplainP99Ms   float64 `json:"explain_p99_ms"`
	ExplainMaxMs   float64 `json:"explain_max_ms"`

	// Budgeted latency phase (present when a budget was configured):
	// the same samples re-measured under the anytime budget, plus how
	// many of them actually truncated.
	BudgetMS           int64   `json:"budget_ms,omitempty"`
	BudgetExpansions   int     `json:"budget_expansions,omitempty"`
	BudgetedP50Ms      float64 `json:"explain_budgeted_p50_ms,omitempty"`
	BudgetedP99Ms      float64 `json:"explain_budgeted_p99_ms,omitempty"`
	BudgetedMaxMs      float64 `json:"explain_budgeted_max_ms,omitempty"`
	BudgetedTruncated  int     `json:"budgeted_truncated,omitempty"`
	BudgetedSamples    int     `json:"budgeted_samples,omitempty"`
	BudgetedP99CutFrom float64 `json:"budgeted_p99_cut_factor,omitempty"` // unbudgeted p99 / budgeted p99

	BatchQueries int     `json:"batch_queries"`
	BatchSeconds float64 `json:"batch_seconds"`
	BatchQPS     float64 `json:"batch_qps"`

	// Contended holds the contended-mode points: sustained BatchExplain
	// over serial-enumeration queries at each (GOMAXPROCS, workers,
	// budget) combination.
	Contended []contendedPoint `json:"contended,omitempty"`
}

// contendedPoint is one contended-mode measurement.
type contendedPoint struct {
	CPU       int     `json:"cpu"`     // GOMAXPROCS during the run
	Workers   int     `json:"workers"` // BatchExplain concurrency
	BudgetMS  int64   `json:"budget_ms,omitempty"`
	Queries   int     `json:"queries"`
	Seconds   float64 `json:"seconds"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Truncated int     `json:"truncated,omitempty"`
}

// runMacro executes the macro experiment into report.Macro.
func runMacro(report *benchReport, stdout io.Writer, opt macroOptions) error {
	genOpt, err := kbgen.PresetOptions(opt.Preset, opt.Seed)
	if err != nil {
		return err
	}
	if opt.PerBucket <= 0 {
		opt.PerBucket = 5
	}
	if opt.Rounds <= 0 {
		opt.Rounds = 4
	}
	m := &macroReport{Preset: opt.Preset, Seed: opt.Seed}

	t0 := time.Now()
	g := kbgen.Generate(genOpt)
	m.GenerateMs = msSince(t0)
	st := g.Stats()
	m.Nodes, m.Edges = st.Nodes, st.Edges
	fmt.Fprintf(stdout, "macro: %s KB: %d entities, %d relationships (generated in %.0fms)\n",
		opt.Preset, st.Nodes, st.Edges, m.GenerateMs)

	// Snapshot round-trip: save the CSR binary format and load it back,
	// verifying content identity by fingerprint. The loaded graph serves
	// the query phases, so the measured traffic runs on exactly what a
	// production deployment would load from disk.
	dir, err := os.MkdirTemp("", "rexbench-macro-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "kb.bin")
	t0 = time.Now()
	if err := g.SaveBinary(snap); err != nil {
		return err
	}
	m.SnapshotSaveMs = msSince(t0)
	if fi, err := os.Stat(snap); err == nil {
		m.SnapshotBytes = fi.Size()
	}
	t0 = time.Now()
	kbv, err := rex.LoadKB(snap)
	if err != nil {
		return err
	}
	m.SnapshotLoadMs = msSince(t0)
	if got, want := kbv.Fingerprint(), g.Fingerprint(); got != want {
		return fmt.Errorf("macro: snapshot fingerprint %s != generated %s", got, want)
	}
	fmt.Fprintf(stdout, "macro: snapshot %0.1f MiB, save %.0fms, load %.0fms, fingerprint ok\n",
		float64(m.SnapshotBytes)/(1<<20), m.SnapshotSaveMs, m.SnapshotLoadMs)

	// Pair sampling: the generator may surface the same pair in several
	// buckets' draws, which would double-weight it in every percentile,
	// so duplicates are dropped before measuring.
	pairs := kbgen.SamplePairs(g, kbgen.PairOptions{PerBucket: opt.PerBucket, Seed: opt.Seed + 1})
	if len(pairs) == 0 {
		return fmt.Errorf("macro: no pairs sampled")
	}
	seen := make(map[rex.Pair]bool, len(pairs))
	named := make([]rex.Pair, 0, len(pairs))
	for _, p := range pairs {
		np := rex.Pair{Start: g.NodeName(p.Start), End: g.NodeName(p.End)}
		if seen[np] {
			continue
		}
		seen[np] = true
		named = append(named, np)
	}
	m.Pairs = len(named)

	ex, err := rex.NewExplainer(kbv, rex.Options{TopK: 10})
	if err != nil {
		return err
	}

	// Latency phase: every pair measured Rounds times, uncached (the
	// explainer has no result cache; evaluator memos warm up exactly as
	// they would under production traffic on one snapshot).
	var lat []float64
	for r := 0; r < opt.Rounds; r++ {
		for _, p := range named {
			t0 = time.Now()
			if _, err := ex.Explain(p.Start, p.End); err != nil {
				return fmt.Errorf("macro: explain %s/%s: %w", p.Start, p.End, err)
			}
			lat = append(lat, msSince(t0))
		}
	}
	slices.Sort(lat)
	m.LatencySamples = len(lat)
	m.ExplainP50Ms = percentile(lat, 50)
	m.ExplainP99Ms = percentile(lat, 99)
	m.ExplainMaxMs = lat[len(lat)-1]
	fmt.Fprintf(stdout, "macro: explain latency over %d samples: p50 %.1fms, p99 %.1fms, max %.1fms\n",
		m.LatencySamples, m.ExplainP50Ms, m.ExplainP99Ms, m.ExplainMaxMs)

	budget := rex.Budget{Timeout: time.Duration(opt.BudgetMS) * time.Millisecond, MaxExpansions: opt.BudgetExpansions}
	if budget != (rex.Budget{}) {
		// Budgeted latency phase: the identical workload under the
		// anytime budget — the tail-taming claim is the ratio of the two
		// p99 figures.
		m.BudgetMS, m.BudgetExpansions = opt.BudgetMS, opt.BudgetExpansions
		var blat []float64
		truncated := 0
		for r := 0; r < opt.Rounds; r++ {
			for _, p := range named {
				t0 = time.Now()
				res, err := ex.ExplainBudgeted(context.Background(), p.Start, p.End, budget)
				if err != nil {
					return fmt.Errorf("macro: budgeted explain %s/%s: %w", p.Start, p.End, err)
				}
				blat = append(blat, msSince(t0))
				if res.Truncated {
					truncated++
				}
			}
		}
		slices.Sort(blat)
		m.BudgetedSamples = len(blat)
		m.BudgetedTruncated = truncated
		m.BudgetedP50Ms = percentile(blat, 50)
		m.BudgetedP99Ms = percentile(blat, 99)
		m.BudgetedMaxMs = blat[len(blat)-1]
		if m.BudgetedP99Ms > 0 {
			m.BudgetedP99CutFrom = m.ExplainP99Ms / m.BudgetedP99Ms
		}
		fmt.Fprintf(stdout, "macro: budgeted explain latency (budget %dms/%d expansions): p50 %.1fms, p99 %.1fms, max %.1fms; %d/%d truncated; p99 cut %.1fx\n",
			opt.BudgetMS, opt.BudgetExpansions, m.BudgetedP50Ms, m.BudgetedP99Ms, m.BudgetedMaxMs,
			truncated, len(blat), m.BudgetedP99CutFrom)
	}

	// Throughput phase: sustained BatchExplain rounds until the target
	// duration elapses (at least one round), all workers busy.
	workers := runtime.GOMAXPROCS(0)
	t0 = time.Now()
	queries := 0
	for {
		res := ex.BatchExplain(context.Background(), named, rex.BatchOptions{Concurrency: workers})
		for _, r := range res {
			if r.Err != nil {
				return fmt.Errorf("macro: batch %s/%s: %w", r.Pair.Start, r.Pair.End, r.Err)
			}
		}
		queries += len(res)
		if time.Since(t0).Seconds() >= opt.QPSSeconds {
			break
		}
	}
	m.BatchSeconds = time.Since(t0).Seconds()
	m.BatchQueries = queries
	m.BatchQPS = float64(queries) / m.BatchSeconds
	fmt.Fprintf(stdout, "macro: sustained BatchExplain: %d queries in %.1fs = %.1f QPS (%d workers)\n",
		m.BatchQueries, m.BatchSeconds, m.BatchQPS, workers)

	// Contended mode: worker-scaling points. Queries run with serial
	// enumeration (Parallelism 1) so a 1-worker run is a true serial
	// baseline and added workers measure cross-query concurrency — the
	// evaluator/cache lock shards — rather than intra-query fan-out.
	if len(opt.Workers) > 0 {
		exc, err := rex.NewExplainer(kbv, rex.Options{TopK: 10, Parallelism: 1})
		if err != nil {
			return err
		}
		cpus := opt.CPUs
		if len(cpus) == 0 {
			cpus = []int{runtime.GOMAXPROCS(0)}
		}
		prev := runtime.GOMAXPROCS(0)
		for _, cpu := range cpus {
			runtime.GOMAXPROCS(cpu)
			for _, w := range opt.Workers {
				pt, err := contendedRun(exc, named, cpu, w, rex.Budget{}, opt.QPSSeconds)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return err
				}
				m.Contended = append(m.Contended, pt)
				fmt.Fprintf(stdout, "macro: contended cpu=%d workers=%d: %.1f QPS, p50 %.1fms, p99 %.1fms\n",
					cpu, w, pt.QPS, pt.P50Ms, pt.P99Ms)
				if budget != (rex.Budget{}) {
					pt, err := contendedRun(exc, named, cpu, w, budget, opt.QPSSeconds)
					if err != nil {
						runtime.GOMAXPROCS(prev)
						return err
					}
					pt.BudgetMS = opt.BudgetMS
					m.Contended = append(m.Contended, pt)
					fmt.Fprintf(stdout, "macro: contended cpu=%d workers=%d budget=%dms: %.1f QPS, p50 %.1fms, p99 %.1fms, %d truncated\n",
						cpu, w, opt.BudgetMS, pt.QPS, pt.P50Ms, pt.P99Ms, pt.Truncated)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}

	report.Macro = m
	return nil
}

// contendedRun drives sustained BatchExplain rounds at one concurrency
// until the target duration elapses, deriving QPS and per-query latency
// percentiles from the per-pair timings. One untimed warmup round runs
// first so the measurement reflects the steady state (evaluator memos
// warm, pools populated) rather than first-touch costs.
func contendedRun(ex *rex.Explainer, pairs []rex.Pair, cpu, workers int, budget rex.Budget, seconds float64) (contendedPoint, error) {
	pt := contendedPoint{CPU: cpu, Workers: workers}
	for _, r := range ex.BatchExplain(context.Background(), pairs, rex.BatchOptions{Concurrency: workers, Budget: budget}) {
		if r.Err != nil {
			return pt, fmt.Errorf("macro: contended warmup %s/%s: %w", r.Pair.Start, r.Pair.End, r.Err)
		}
	}
	var lat []float64
	t0 := time.Now()
	for {
		res := ex.BatchExplain(context.Background(), pairs, rex.BatchOptions{Concurrency: workers, Budget: budget})
		for _, r := range res {
			if r.Err != nil {
				return pt, fmt.Errorf("macro: contended batch %s/%s: %w", r.Pair.Start, r.Pair.End, r.Err)
			}
			lat = append(lat, float64(r.Elapsed.Nanoseconds())/1e6)
			if r.Result.Truncated {
				pt.Truncated++
			}
		}
		pt.Queries += len(res)
		if time.Since(t0).Seconds() >= seconds {
			break
		}
	}
	pt.Seconds = time.Since(t0).Seconds()
	pt.QPS = float64(pt.Queries) / pt.Seconds
	slices.Sort(lat)
	pt.P50Ms = percentile(lat, 50)
	pt.P99Ms = percentile(lat, 99)
	return pt, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// percentile returns the p-th percentile of sorted samples by linear
// interpolation between closest ranks (the "exclusive" definition used
// by most monitoring systems). The old nearest-rank formula made p99
// collapse onto max for small sample sets; interpolation keeps the
// estimate meaningful at every sample count.
func percentile(sorted []float64, p float64) float64 {
	switch len(sorted) {
	case 0:
		return 0
	case 1:
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
