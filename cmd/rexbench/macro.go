package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"rex"
	"rex/internal/kbgen"
)

// The macro experiment gives the perf trajectory a traffic-shaped
// number: instead of ns/op on the fixed sample KB, it generates a
// preset-sized synthetic KB (the million preset is ~1.2M relationships,
// the paper's scale), proves the CSR binary snapshot round-trips it at
// speed, and reports end-to-end Explain latency percentiles over
// connectedness-bucketed pairs plus sustained BatchExplain throughput.
// Everything is deterministic in the seed except wall-clock timings.

// macroOptions parameterises the macro run.
type macroOptions struct {
	Preset     string
	Seed       int64
	PerBucket  int     // pairs sampled per connectedness bucket
	Rounds     int     // latency measurements per pair
	QPSSeconds float64 // target duration of the throughput phase (0: one round)
}

// macroReport is the "macro" section of BENCH.json.
type macroReport struct {
	Preset         string  `json:"preset"`
	Seed           int64   `json:"seed"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	GenerateMs     float64 `json:"generate_ms"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	SnapshotSaveMs float64 `json:"snapshot_save_ms"`
	SnapshotLoadMs float64 `json:"snapshot_load_ms"`
	Pairs          int     `json:"pairs"`
	LatencySamples int     `json:"latency_samples"`
	ExplainP50Ms   float64 `json:"explain_p50_ms"`
	ExplainP99Ms   float64 `json:"explain_p99_ms"`
	ExplainMaxMs   float64 `json:"explain_max_ms"`
	BatchQueries   int     `json:"batch_queries"`
	BatchSeconds   float64 `json:"batch_seconds"`
	BatchQPS       float64 `json:"batch_qps"`
}

// runMacro executes the macro experiment into report.Macro.
func runMacro(report *benchReport, stdout io.Writer, opt macroOptions) error {
	genOpt, err := kbgen.PresetOptions(opt.Preset, opt.Seed)
	if err != nil {
		return err
	}
	if opt.PerBucket <= 0 {
		opt.PerBucket = 3
	}
	if opt.Rounds <= 0 {
		opt.Rounds = 3
	}
	m := &macroReport{Preset: opt.Preset, Seed: opt.Seed}

	t0 := time.Now()
	g := kbgen.Generate(genOpt)
	m.GenerateMs = msSince(t0)
	st := g.Stats()
	m.Nodes, m.Edges = st.Nodes, st.Edges
	fmt.Fprintf(stdout, "macro: %s KB: %d entities, %d relationships (generated in %.0fms)\n",
		opt.Preset, st.Nodes, st.Edges, m.GenerateMs)

	// Snapshot round-trip: save the CSR binary format and load it back,
	// verifying content identity by fingerprint. The loaded graph serves
	// the query phases, so the measured traffic runs on exactly what a
	// production deployment would load from disk.
	dir, err := os.MkdirTemp("", "rexbench-macro-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "kb.bin")
	t0 = time.Now()
	if err := g.SaveBinary(snap); err != nil {
		return err
	}
	m.SnapshotSaveMs = msSince(t0)
	if fi, err := os.Stat(snap); err == nil {
		m.SnapshotBytes = fi.Size()
	}
	t0 = time.Now()
	kbv, err := rex.LoadKB(snap)
	if err != nil {
		return err
	}
	m.SnapshotLoadMs = msSince(t0)
	if got, want := kbv.Fingerprint(), g.Fingerprint(); got != want {
		return fmt.Errorf("macro: snapshot fingerprint %s != generated %s", got, want)
	}
	fmt.Fprintf(stdout, "macro: snapshot %0.1f MiB, save %.0fms, load %.0fms, fingerprint ok\n",
		float64(m.SnapshotBytes)/(1<<20), m.SnapshotSaveMs, m.SnapshotLoadMs)

	pairs := kbgen.SamplePairs(g, kbgen.PairOptions{PerBucket: opt.PerBucket, Seed: opt.Seed + 1})
	if len(pairs) == 0 {
		return fmt.Errorf("macro: no pairs sampled")
	}
	named := make([]rex.Pair, len(pairs))
	for i, p := range pairs {
		named[i] = rex.Pair{Start: g.NodeName(p.Start), End: g.NodeName(p.End)}
	}
	m.Pairs = len(named)

	ex, err := rex.NewExplainer(kbv, rex.Options{TopK: 10})
	if err != nil {
		return err
	}

	// Latency phase: every pair measured Rounds times, uncached (the
	// explainer has no result cache; evaluator memos warm up exactly as
	// they would under production traffic on one snapshot).
	var lat []float64
	for r := 0; r < opt.Rounds; r++ {
		for _, p := range named {
			t0 = time.Now()
			if _, err := ex.Explain(p.Start, p.End); err != nil {
				return fmt.Errorf("macro: explain %s/%s: %w", p.Start, p.End, err)
			}
			lat = append(lat, msSince(t0))
		}
	}
	slices.Sort(lat)
	m.LatencySamples = len(lat)
	m.ExplainP50Ms = percentile(lat, 50)
	m.ExplainP99Ms = percentile(lat, 99)
	m.ExplainMaxMs = lat[len(lat)-1]
	fmt.Fprintf(stdout, "macro: explain latency over %d samples: p50 %.1fms, p99 %.1fms, max %.1fms\n",
		m.LatencySamples, m.ExplainP50Ms, m.ExplainP99Ms, m.ExplainMaxMs)

	// Throughput phase: sustained BatchExplain rounds until the target
	// duration elapses (at least one round), all workers busy.
	workers := runtime.GOMAXPROCS(0)
	t0 = time.Now()
	queries := 0
	for {
		res := ex.BatchExplain(context.Background(), named, rex.BatchOptions{Concurrency: workers})
		for _, r := range res {
			if r.Err != nil {
				return fmt.Errorf("macro: batch %s/%s: %w", r.Pair.Start, r.Pair.End, r.Err)
			}
		}
		queries += len(res)
		if time.Since(t0).Seconds() >= opt.QPSSeconds {
			break
		}
	}
	m.BatchSeconds = time.Since(t0).Seconds()
	m.BatchQueries = queries
	m.BatchQPS = float64(queries) / m.BatchSeconds
	fmt.Fprintf(stdout, "macro: sustained BatchExplain: %d queries in %.1fs = %.1f QPS (%d workers)\n",
		m.BatchQueries, m.BatchSeconds, m.BatchQPS, workers)

	report.Macro = m
	return nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// percentile returns the p-th percentile of sorted samples
// (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
