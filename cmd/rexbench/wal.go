package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"rex"
	"rex/internal/kbgen"
)

// The wal experiment prices durability: the same localized delta
// stream as the ingest suite, applied through a store journaling into
// a write-ahead log under each fsync policy. The spread between
// fsync=off and fsync=always is the raw cost of the disk barrier; the
// interval row is the deployment default trade-off (bounded data loss
// window, near-off throughput).

// walOptions parameterises one wal run (all policies share them).
type walOptions struct {
	Preset string
	Seed   int64
	Deltas int // deltas applied per fsync policy
	Ops    int // records per delta
}

// walReport is one fsync-policy row of the "wal" section of BENCH.json.
type walReport struct {
	Preset      string `json:"preset"`
	Seed        int64  `json:"seed"`
	Fsync       string `json:"fsync"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Deltas      int    `json:"deltas"`
	OpsPerDelta int    `json:"ops_per_delta"`

	ApplyP50Ms    float64 `json:"apply_p50_ms"`
	ApplyP99Ms    float64 `json:"apply_p99_ms"`
	AppliesPerSec float64 `json:"applies_per_sec"`
	OpsPerSec     float64 `json:"ops_per_sec"`

	Fsyncs        uint64 `json:"fsyncs"`
	WALBytes      uint64 `json:"wal_appended_bytes"`
	Checkpoints   uint64 `json:"checkpoints"`
	CheckpointGen uint64 `json:"checkpoint_generation"`
}

// walPolicies are measured in this order so the table reads from the
// strongest guarantee to the cheapest.
var walPolicies = []string{"always", "interval", "off"}

// runWAL executes the wal experiment into report.WAL, one row per
// fsync policy.
func runWAL(report *benchReport, stdout io.Writer, opt walOptions) error {
	genOpt, err := kbgen.PresetOptions(opt.Preset, opt.Seed)
	if err != nil {
		return err
	}
	if opt.Deltas <= 0 {
		opt.Deltas = 64
	}
	if opt.Ops <= 0 {
		opt.Ops = 100
	}
	g := kbgen.Generate(genOpt)
	st := g.Stats()
	fmt.Fprintf(stdout, "wal: %s KB: %d entities, %d relationships; %d deltas x %d ops per policy\n",
		opt.Preset, st.Nodes, st.Edges, opt.Deltas, opt.Ops)

	for _, policy := range walPolicies {
		r := &walReport{
			Preset: opt.Preset, Seed: opt.Seed, Fsync: policy,
			Nodes: st.Nodes, Edges: st.Edges,
			Deltas: opt.Deltas, OpsPerDelta: opt.Ops,
		}
		// Every policy replays the identical delta stream: same seed,
		// same anchors, same record bytes — only the flush policy moves.
		rng := rand.New(rand.NewSource(opt.Seed + 3))
		dir, err := os.MkdirTemp("", "rexbench-wal-*")
		if err != nil {
			return err
		}
		snap := filepath.Join(dir, "kb.bin")
		if err := g.SaveBinary(snap); err != nil {
			os.RemoveAll(dir)
			return err
		}
		store, err := rex.OpenStore(snap, rex.Options{
			TopK: 10, MaxPatternSize: 3, CacheSize: 256,
			Durability: rex.DurabilityOptions{
				Dir:   filepath.Join(dir, "data"),
				Fsync: policy,
			},
		})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}

		var lat []float64
		t0 := time.Now()
		for i := 0; i < opt.Deltas; i++ {
			d := ingestDelta(g, rng, fmt.Sprintf("w%d", i), opt.Ops, i == 0)
			ta := time.Now()
			if _, err := store.Apply(strings.NewReader(d)); err != nil {
				store.Close()
				os.RemoveAll(dir)
				return fmt.Errorf("wal: %s delta %d: %w", policy, i, err)
			}
			lat = append(lat, msSince(ta))
		}
		total := time.Since(t0).Seconds()
		slices.Sort(lat)
		r.ApplyP50Ms = percentile(lat, 50)
		r.ApplyP99Ms = percentile(lat, 99)
		r.AppliesPerSec = float64(opt.Deltas) / total
		r.OpsPerSec = float64(opt.Deltas*opt.Ops) / total
		ds := store.DurabilityStats()
		r.Fsyncs = ds.Fsyncs
		r.WALBytes = ds.AppendedBytes
		r.Checkpoints = ds.Checkpoints
		r.CheckpointGen = ds.CheckpointGen
		if err := store.Close(); err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("wal: %s close: %w", policy, err)
		}
		os.RemoveAll(dir)

		fmt.Fprintf(stdout, "wal: fsync=%-8s %8.1f applies/s (%.0f ops/s), apply p50 %.2fms, p99 %.2fms, %d fsyncs, %d checkpoints\n",
			policy, r.AppliesPerSec, r.OpsPerSec, r.ApplyP50Ms, r.ApplyP99Ms, r.Fsyncs, r.Checkpoints)
		report.WAL = append(report.WAL, r)
	}
	return nil
}
