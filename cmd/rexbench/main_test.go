package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the benchmark harness end to end on a tiny
// synthetic workload: one pair per bucket at 5% scale keeps it fast
// while still exercising workload construction and table rendering.
func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "fig8", "-pairs", "1", "-scale", "0.05", "-quick"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "workload:") {
		t.Errorf("output missing the workload header:\n%s", s)
	}
	if !strings.Contains(s, "Figure 8") {
		t.Errorf("output missing the Figure 8 table:\n%s", s)
	}
}

// TestRunFlagHandling checks help and flag-error exit codes.
func TestRunFlagHandling(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h: exit code = %d, want 0", code)
	}
	if code := run([]string{"-scale", "not-a-number"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit code = %d, want 2", code)
	}
	// An experiment selector that matches nothing runs nothing and
	// still exits cleanly.
	out.Reset()
	if code := run([]string{"-exp", "nonesuch"}, &out, &errOut); code != 0 {
		t.Errorf("unmatched -exp: exit code = %d, want 0", code)
	}
	if out.Len() != 0 {
		t.Errorf("unmatched -exp produced output: %s", out.String())
	}
}
