package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the benchmark harness end to end on a tiny
// synthetic workload: one pair per bucket at 5% scale keeps it fast
// while still exercising workload construction and table rendering.
func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "fig8", "-pairs", "1", "-scale", "0.05", "-quick"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "workload:") {
		t.Errorf("output missing the workload header:\n%s", s)
	}
	if !strings.Contains(s, "Figure 8") {
		t.Errorf("output missing the Figure 8 table:\n%s", s)
	}
}

// TestRunFlagHandling checks help and flag-error exit codes.
func TestRunFlagHandling(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h: exit code = %d, want 0", code)
	}
	if code := run([]string{"-scale", "not-a-number"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit code = %d, want 2", code)
	}
	// An experiment selector that matches nothing runs nothing and
	// still exits cleanly.
	out.Reset()
	if code := run([]string{"-exp", "nonesuch"}, &out, &errOut); code != 0 {
		t.Errorf("unmatched -exp: exit code = %d, want 0", code)
	}
	if out.Len() != 0 {
		t.Errorf("unmatched -exp produced output: %s", out.String())
	}
}

// TestRunMicroSmoke drives the machine-readable micro suite end to end
// and validates the JSON report shape. Skipped under -short: the suite
// runs each workload to statistical significance (~1s each).
func TestRunMicroSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("micro suite runs full benchmarks; skipped under -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "micro", "-bench-out", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH.json does not parse: %v", err)
	}
	byName := map[string]benchResult{}
	for _, w := range rep.Workloads {
		if w.Iterations <= 0 || w.NsPerOp <= 0 {
			t.Errorf("workload %s has empty measurements: %+v", w.Name, w)
		}
		byName[w.Name] = w
	}
	for _, want := range []string{"match_count", "canonical_key", "explain_end_to_end"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("report missing workload %q", want)
		}
	}
	// The alloc-regression bar of the pooled matcher: the seed baseline
	// recorded 15 allocs/op; steady state must stay essentially
	// allocation-free (sync.Pool refills after a GC may contribute a
	// fractional alloc/op, so allow a small slack rather than 0).
	if mc := byName["match_count"]; mc.AllocsPerOp > 2 {
		t.Errorf("match_count allocates %d/op; want ≤ 2 (seed baseline: 15)", mc.AllocsPerOp)
	}
}

// TestCompareReports exercises the delta-table rendering directly:
// matched workloads get percentage deltas, asymmetric ones are called
// out as added/removed.
func TestCompareReports(t *testing.T) {
	baseline := &benchReport{
		Generated: "2026-01-01T00:00:00Z",
		Workloads: []benchResult{
			{Name: "match_count", NsPerOp: 1000, AllocsPerOp: 10},
			{Name: "gone", NsPerOp: 5, AllocsPerOp: 1},
		},
	}
	current := &benchReport{
		Workloads: []benchResult{
			{Name: "match_count", NsPerOp: 500, AllocsPerOp: 0},
			{Name: "fresh", NsPerOp: 7, AllocsPerOp: 2},
		},
	}
	var buf bytes.Buffer
	compareReports(&buf, "base.json", baseline, current)
	s := buf.String()
	for _, want := range []string{"match_count", "-50.0%", "(new workload)", "(removed workload)", "base.json"} {
		if !strings.Contains(s, want) {
			t.Errorf("delta table missing %q:\n%s", want, s)
		}
	}
}

// TestRunCompareRequiresMicro pins the flag-combination error.
func TestRunCompareRequiresMicro(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "fig8", "-pairs", "1", "-scale", "0.05", "-quick", "-compare", "nope.json"}, &out, &errOut); code != 2 {
		t.Errorf("-compare without micro: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-compare requires") {
		t.Errorf("missing error message, got: %s", errOut.String())
	}
}

// TestRunMacroSmoke drives the macro experiment end to end on the small
// preset (one pair per bucket, single throughput round) and checks the
// JSON report carries the macro section.
func TestRunMacroSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("macro smoke generates a KB; skip under -short")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "macro", "-preset", "small", "-macro-pairs", "1",
		"-macro-qps-seconds", "0", "-bench-out", jsonPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fingerprint ok", "explain latency", "sustained BatchExplain"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("macro output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	m := report.Macro
	if m == nil {
		t.Fatal("report has no macro section")
	}
	if m.Preset != "small" || m.Edges == 0 || m.Pairs == 0 || m.LatencySamples == 0 || m.BatchQueries == 0 {
		t.Errorf("implausible macro section: %+v", m)
	}
	if m.ExplainP50Ms <= 0 || m.ExplainP99Ms < m.ExplainP50Ms {
		t.Errorf("implausible latency percentiles: p50=%v p99=%v", m.ExplainP50Ms, m.ExplainP99Ms)
	}
}

// TestRunIngestSmoke drives the write-path experiment end to end on the
// small preset and checks the JSON report carries the ingest section.
func TestRunIngestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest smoke generates a KB; skip under -short")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "ingest", "-preset", "small", "-ingest-deltas", "4",
		"-ingest-ops", "20", "-ingest-pairs", "4", "-bench-out", jsonPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"overlay", "swap-to-warm", "sustained 4 deltas"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("ingest output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Ingest) != 1 {
		t.Fatalf("ingest sections = %d, want 1", len(report.Ingest))
	}
	ig := report.Ingest[0]
	if ig.Preset != "small" || ig.Edges == 0 || ig.HotPairs == 0 || ig.Deltas != 4 {
		t.Errorf("implausible ingest section: %+v", ig)
	}
	if ig.OverlayMs <= 0 || ig.RebuildMs <= 0 || ig.AppliesPerSec <= 0 {
		t.Errorf("ingest timings missing: %+v", ig)
	}
	// The O(delta) claim holds even at the small preset: the overlay
	// apply must beat the full Clone+Freeze rebuild outright.
	if ig.OverlaySpeedup <= 1 {
		t.Errorf("overlay apply not faster than rebuild: %+v", ig)
	}
	if ig.PostSwapHitRate < 0 || ig.PostSwapHitRate > 1 {
		t.Errorf("hit rate out of range: %v", ig.PostSwapHitRate)
	}
}

// TestRunRouterSmoke drives the replicated-tier experiment with
// in-process replicas (no child re-exec, so it works under `go test`
// where os.Executable is the test binary) and checks the report carries
// a plausible router section.
func TestRunRouterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("router smoke generates a KB and boots a fleet; skip under -short")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "router", "-router-inproc", "-router-replicas", "2",
		"-router-seconds", "0.2", "-router-workers", "4", "-router-tail", "40",
		"-bench-out", jsonPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"router:", "replica(s):", "tail under"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("router output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	r := report.Router
	if r == nil {
		t.Fatal("report has no router section")
	}
	if r.Preset != "small" || r.Replicas != 2 || len(r.QPS) != 2 {
		t.Errorf("implausible router section: %+v", r)
	}
	for _, q := range r.QPS {
		if q.QPS <= 0 || q.Errors != 0 {
			t.Errorf("QPS point at %d replica(s) implausible: %+v", q.Replicas, q)
		}
	}
	hp := r.Hedging
	if hp == nil {
		t.Fatal("router section has no hedging comparison")
	}
	if hp.Samples == 0 || hp.UnhedgedP99Ms <= 0 || hp.HedgedP99Ms <= 0 {
		t.Errorf("implausible hedging point: %+v", hp)
	}
}

// TestPercentileInterpolation pins the linear-interpolation percentile:
// small sample sets must not collapse p99 onto max (the nearest-rank
// bug the macro report shipped with), and exact ranks stay exact.
func TestPercentileInterpolation(t *testing.T) {
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton: %v", got)
	}
	s := []float64{1, 2, 3, 4, 5}
	if got := percentile(s, 50); got != 3 {
		t.Errorf("p50 of 1..5 = %v, want 3", got)
	}
	if got := percentile(s, 100); got != 5 {
		t.Errorf("p100 of 1..5 = %v, want 5", got)
	}
	// p99 over 5 samples interpolates between the 4th and 5th value —
	// strictly below max, unlike nearest-rank.
	if got := percentile(s, 99); got <= 4 || got >= 5 {
		t.Errorf("p99 of 1..5 = %v, want in (4,5)", got)
	}
	// Many-sample sanity: p99 of 1..200 ≈ 198.01.
	var big []float64
	for i := 1; i <= 200; i++ {
		big = append(big, float64(i))
	}
	if got := percentile(big, 99); got < 197.5 || got > 198.5 {
		t.Errorf("p99 of 1..200 = %v, want ≈198", got)
	}
}

// TestParseIntList covers the contended-mode list flags.
func TestParseIntList(t *testing.T) {
	if got, err := parseIntList(""); err != nil || got != nil {
		t.Errorf("empty: %v %v", got, err)
	}
	got, err := parseIntList("1, 4,16")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Errorf("parse: %v %v", got, err)
	}
	if _, err := parseIntList("1,x"); err == nil {
		t.Error("non-numeric entry accepted")
	}
	if _, err := parseIntList("0"); err == nil {
		t.Error("zero accepted")
	}
}

// TestRunMacroContendedSmoke exercises the contended mode and budget
// knobs end to end on the small preset.
func TestRunMacroContendedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("macro smoke generates a KB; skip under -short")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "macro", "-preset", "small", "-macro-pairs", "1",
		"-macro-rounds", "1", "-macro-qps-seconds", "0", "-macro-budget-ms", "50",
		"-macro-workers", "1,2", "-mutexprofile", filepath.Join(dir, "mutex.pprof"),
		"-bench-out", jsonPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"budgeted explain latency", "contended cpu=", "wrote mutex profile"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("macro output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	m := report.Macro
	if m == nil {
		t.Fatal("report has no macro section")
	}
	if m.BudgetMS != 50 || m.BudgetedSamples == 0 {
		t.Errorf("budgeted phase missing: %+v", m)
	}
	// workers 1 and 2, each with and without the budget.
	if len(m.Contended) != 4 {
		t.Fatalf("contended points = %d, want 4", len(m.Contended))
	}
	for i, pt := range m.Contended {
		if pt.Queries == 0 || pt.QPS <= 0 || pt.P99Ms <= 0 {
			t.Errorf("contended point %d implausible: %+v", i, pt)
		}
	}
	if fi, err := os.Stat(filepath.Join(dir, "mutex.pprof")); err != nil || fi.Size() == 0 {
		t.Errorf("mutex profile not written: %v", err)
	}
}
