package main

import (
	"bufio"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strconv"
	"sync"
	"time"

	"rex"
	"rex/internal/cluster"
	"rex/internal/fail"
	"rex/internal/kbgen"
	"rex/internal/serve"
)

// The router experiment measures the replicated serving tier end to
// end: a preset KB is generated once, N replica processes are spawned
// from this same binary (each loading the shared binary snapshot and
// serving real HTTP), and an in-process cluster.Router drives them.
// Two question shapes go into BENCH.json:
//
//   - QPS vs replica count: the same worker pool hammers the router
//     over fleets of 1, 2, ... N replicas, so the scaling of the
//     consistent-hash scatter is a number, not a hope.
//   - Hedged vs unhedged tail: a fleet with a probabilistic stall
//     injected (a q% chance each request sleeps s ms — the "one slow
//     replica" regime hedging exists for) is measured twice under
//     budgeted queries, hedging off then on, reporting p50/p99 each.
//
// -router-inproc swaps the replica processes for in-process HTTP
// servers — same wire traffic, one process — for sandboxed CI and the
// command's own tests.

// routerOptions parameterises the router experiment.
type routerOptions struct {
	Preset    string
	Seed      int64
	Replicas  int     // fleet size ceiling (QPS phases run 1..Replicas)
	Workers   int     // concurrent load-generating clients
	Seconds   float64 // duration of each QPS phase
	BudgetMS  int64   // budget for the hedging phase's queries
	StallMS   int     // injected stall length for the hedging phase
	StallPct  int     // injected stall probability (percent)
	TailN     int     // sequential samples per hedging mode
	InProcess bool    // in-process replicas instead of child processes
}

// routerReport is the "router" section of BENCH.json.
type routerReport struct {
	Preset       string            `json:"preset"`
	Seed         int64             `json:"seed"`
	Replicas     int               `json:"replicas"`
	Workers      int               `json:"workers"`
	MultiProcess bool              `json:"multi_process"`
	QPS          []routerQPSPoint  `json:"qps_by_replicas"`
	Hedging      *routerHedgePoint `json:"hedging,omitempty"`
}

// routerQPSPoint is one sustained-throughput measurement at a fleet size.
type routerQPSPoint struct {
	Replicas int     `json:"replicas"`
	Queries  int     `json:"queries"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Errors   int     `json:"errors,omitempty"`
}

// routerHedgePoint is the hedged-vs-unhedged tail comparison over a
// fleet with an injected probabilistic stall.
type routerHedgePoint struct {
	Replicas      int     `json:"replicas"`
	StallMS       int     `json:"stall_ms"`
	StallPercent  int     `json:"stall_percent"`
	BudgetMS      int64   `json:"budget_ms"`
	Samples       int     `json:"samples"`
	UnhedgedP50Ms float64 `json:"unhedged_p50_ms"`
	UnhedgedP99Ms float64 `json:"unhedged_p99_ms"`
	HedgedP50Ms   float64 `json:"hedged_p50_ms"`
	HedgedP99Ms   float64 `json:"hedged_p99_ms"`
}

// benchReplica is one running replica, however it was started.
type benchReplica struct {
	addr string
	stop func()
}

func runRouter(report *benchReport, stdout io.Writer, opt routerOptions) error {
	if opt.Replicas <= 0 {
		opt.Replicas = 3
	}
	if opt.Workers <= 0 {
		opt.Workers = 8
	}
	if opt.Seconds <= 0 {
		opt.Seconds = 2
	}
	if opt.BudgetMS <= 0 {
		opt.BudgetMS = 50
	}
	if opt.StallMS <= 0 {
		opt.StallMS = 40
	}
	if opt.StallPct <= 0 {
		// Below 5%: the hedge delay is p95-derived, so a stall rate at or
		// above 5% pushes the observed p95 up to the stall itself and the
		// hedge fires too late to show its effect.
		opt.StallPct = 3
	}
	if opt.TailN <= 0 {
		opt.TailN = 400
	}

	genOpt, err := kbgen.PresetOptions(opt.Preset, opt.Seed)
	if err != nil {
		return err
	}
	g := kbgen.Generate(genOpt)
	st := g.Stats()
	dir, err := os.MkdirTemp("", "rexbench-router-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "kb.bin")
	if err := g.SaveBinary(snap); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "router: %s KB: %d entities, %d relationships; snapshot at %s\n",
		opt.Preset, st.Nodes, st.Edges, snap)

	var queries []url.Values
	for _, p := range kbgen.SamplePairs(g, kbgen.PairOptions{PerBucket: 5, Seed: opt.Seed + 1}) {
		v := url.Values{}
		v.Set("start", g.NodeName(p.Start))
		v.Set("end", g.NodeName(p.End))
		queries = append(queries, v)
	}
	if len(queries) == 0 {
		return fmt.Errorf("router: no pairs sampled")
	}

	r := &routerReport{
		Preset: opt.Preset, Seed: opt.Seed, Replicas: opt.Replicas,
		Workers: opt.Workers, MultiProcess: !opt.InProcess,
	}

	// Phase 1: QPS vs replica count. One fleet of N clean replicas;
	// each point routes over a prefix of it.
	fleet, err := startFleet(opt, snap, opt.Replicas, 0, 0)
	if err != nil {
		return err
	}
	defer stopFleet(fleet)
	for n := 1; n <= opt.Replicas; n++ {
		pt, err := measureQPS(fleet[:n], queries, opt)
		if err != nil {
			return err
		}
		r.QPS = append(r.QPS, pt)
		fmt.Fprintf(stdout, "router: %d replica(s): %.0f qps (p50 %.2fms, p99 %.2fms, %d queries, %d errors)\n",
			n, pt.QPS, pt.P50Ms, pt.P99Ms, pt.Queries, pt.Errors)
	}

	// Phase 2: hedged vs unhedged tail over a stall-injected fleet of
	// two — the smallest fleet where a hedge has somewhere to go.
	if opt.Replicas >= 2 {
		stallFleet, err := startFleet(opt, snap, 2, opt.StallMS, opt.StallPct)
		if err != nil {
			return err
		}
		defer stopFleet(stallFleet)
		hp := &routerHedgePoint{
			Replicas: 2, StallMS: opt.StallMS, StallPercent: opt.StallPct,
			BudgetMS: opt.BudgetMS, Samples: opt.TailN,
		}
		hp.UnhedgedP50Ms, hp.UnhedgedP99Ms, err = measureTail(stallFleet, queries, opt, true)
		if err != nil {
			return err
		}
		hp.HedgedP50Ms, hp.HedgedP99Ms, err = measureTail(stallFleet, queries, opt, false)
		if err != nil {
			return err
		}
		r.Hedging = hp
		fmt.Fprintf(stdout, "router: tail under %d%% x %dms stalls: unhedged p99 %.2fms, hedged p99 %.2fms\n",
			opt.StallPct, opt.StallMS, hp.UnhedgedP99Ms, hp.HedgedP99Ms)
	}

	report.Router = r
	return nil
}

// startFleet boots n replicas over the shared snapshot — child
// processes of this binary, or in-process HTTP servers with
// -router-inproc — with an optional probabilistic stall armed.
func startFleet(opt routerOptions, snap string, n, stallMS, stallPct int) ([]benchReplica, error) {
	fleet := make([]benchReplica, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("bench-r%d", i)
		var (
			rep benchReplica
			err error
		)
		if opt.InProcess {
			rep, err = startInprocReplica(snap, name, stallMS, stallPct)
		} else {
			rep, err = startChildReplica(snap, name, stallMS, stallPct)
		}
		if err != nil {
			stopFleet(fleet)
			return nil, err
		}
		fleet = append(fleet, rep)
	}
	return fleet, nil
}

func stopFleet(fleet []benchReplica) {
	for _, r := range fleet {
		r.stop()
	}
}

// startChildReplica re-execs this binary in the hidden router-replica
// mode and waits for its LISTENING line.
func startChildReplica(snap, name string, stallMS, stallPct int) (benchReplica, error) {
	exe, err := os.Executable()
	if err != nil {
		return benchReplica{}, err
	}
	cmd := exec.Command(exe, "-exp", "router-replica",
		"-router-kb", snap, "-router-name", name,
		"-router-stall-ms", strconv.Itoa(stallMS),
		"-router-stall-pct", strconv.Itoa(stallPct))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return benchReplica{}, err
	}
	if err := cmd.Start(); err != nil {
		return benchReplica{}, err
	}
	stop := func() {
		cmd.Process.Kill() //nolint:errcheck // already exiting
		cmd.Wait()         //nolint:errcheck
	}
	sc := bufio.NewScanner(out)
	deadline := time.AfterFunc(30*time.Second, stop)
	for sc.Scan() {
		var addr string
		if _, err := fmt.Sscanf(sc.Text(), "LISTENING %s", &addr); err == nil {
			deadline.Stop()
			// Keep draining the pipe so the child never blocks on writes.
			go func() {
				for sc.Scan() {
				}
			}()
			return benchReplica{addr: "http://" + addr, stop: stop}, nil
		}
	}
	deadline.Stop()
	stop()
	return benchReplica{}, fmt.Errorf("replica %s exited before listening", name)
}

// startInprocReplica is the same replica as a goroutine: identical
// serve stack and wire format, no process isolation.
func startInprocReplica(snap, name string, stallMS, stallPct int) (benchReplica, error) {
	store, err := replicaStore(snap)
	if err != nil {
		return benchReplica{}, err
	}
	armStall(stallMS, stallPct)
	srv := serve.New(store, serve.Config{Timeout: 30 * time.Second, MaxBatch: 1024, Name: name})
	hs := httptest.NewServer(srv.Handler())
	return benchReplica{addr: hs.URL, stop: func() {
		hs.Close()
		store.Close() //nolint:errcheck
		fail.Reset()
	}}, nil
}

func replicaStore(snap string) (*rex.Store, error) {
	k, err := rex.LoadKB(snap)
	if err != nil {
		return nil, err
	}
	return rex.NewStore(k, rex.Options{
		Measure: "size", TopK: 10, MaxPatternSize: 3, CacheSize: 4096,
	})
}

// armStall injects the "one slow response in q%" regime through the
// serve.respond failpoint seam: the hook sleeps and then passes, so
// stalled requests still succeed — exactly the tail hedging targets.
func armStall(stallMS, stallPct int) {
	if stallMS <= 0 || stallPct <= 0 {
		return
	}
	d := time.Duration(stallMS) * time.Millisecond
	fail.EnableFunc("serve.respond", func() error {
		if rand.IntN(100) < stallPct {
			time.Sleep(d)
		}
		return nil
	})
}

// runRouterReplica is the hidden child mode: load the snapshot, serve
// on an ephemeral port, print the address, run until killed.
func runRouterReplica(stderr io.Writer, kbPath, name string, stallMS, stallPct int) int {
	store, err := replicaStore(kbPath)
	if err != nil {
		fmt.Fprintln(stderr, "rexbench router-replica:", err)
		return 1
	}
	armStall(stallMS, stallPct)
	srv := serve.New(store, serve.Config{Timeout: 30 * time.Second, MaxBatch: 1024, Name: name})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(stderr, "rexbench router-replica:", err)
		return 1
	}
	fmt.Printf("LISTENING %s\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(stderr, "rexbench router-replica:", err)
		return 1
	}
	return 0
}

// benchRouter builds the in-process router over a fleet.
func benchRouter(fleet []benchReplica, disableHedging bool) (*cluster.Router, error) {
	rcs := make([]cluster.ReplicaConfig, len(fleet))
	for i, r := range fleet {
		rcs[i] = cluster.ReplicaConfig{Name: fmt.Sprintf("bench-r%d", i), URL: r.addr}
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:       rcs,
		HealthInterval: 100 * time.Millisecond,
		DisableHedging: disableHedging,
	})
	if err != nil {
		return nil, err
	}
	rt.Start()
	return rt, nil
}

// measureQPS hammers the router with opt.Workers concurrent clients
// for opt.Seconds and reports throughput plus latency percentiles.
func measureQPS(fleet []benchReplica, queries []url.Values, opt routerOptions) (routerQPSPoint, error) {
	rt, err := benchRouter(fleet, false)
	if err != nil {
		return routerQPSPoint{}, err
	}
	defer rt.Close()
	h := rt.Handler()

	// Warmup: touch every pair once so replica caches and the router's
	// latency ring are primed before the clock starts.
	for _, q := range queries {
		routerBenchGet(h, "/explain?"+q.Encode())
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		allLat   []float64
		total    int
		errs     int
		deadline = time.Now().Add(time.Duration(opt.Seconds * float64(time.Second)))
	)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]float64, 0, 4096)
			n, bad := 0, 0
			for i := w; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				t0 := time.Now()
				code := routerBenchGet(h, "/explain?"+q.Encode())
				if code == http.StatusOK {
					lat = append(lat, msSince(t0))
				} else {
					bad++
				}
				n++
			}
			mu.Lock()
			allLat = append(allLat, lat...)
			total += n
			errs += bad
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	slices.Sort(allLat)
	pt := routerQPSPoint{
		Replicas: len(fleet), Queries: total, Seconds: opt.Seconds,
		QPS:   float64(total) / opt.Seconds,
		P50Ms: percentile(allLat, 50), P99Ms: percentile(allLat, 99),
		Errors: errs,
	}
	return pt, nil
}

// measureTail issues opt.TailN sequential budgeted queries and reports
// p50/p99 — the single-client view of the tail, where a hedge either
// saves the caller from a stalled replica or nothing does.
func measureTail(fleet []benchReplica, queries []url.Values, opt routerOptions, disableHedging bool) (p50, p99 float64, err error) {
	rt, err := benchRouter(fleet, disableHedging)
	if err != nil {
		return 0, 0, err
	}
	defer rt.Close()
	h := rt.Handler()

	budget := "&budget_ms=" + strconv.FormatInt(opt.BudgetMS, 10)
	for i := 0; i < 2*len(queries) && i < 64; i++ { // warm caches and the p95 ring
		routerBenchGet(h, "/explain?"+queries[i%len(queries)].Encode()+budget)
	}
	lat := make([]float64, 0, opt.TailN)
	for i := 0; i < opt.TailN; i++ {
		q := queries[i%len(queries)]
		t0 := time.Now()
		if code := routerBenchGet(h, "/explain?"+q.Encode()+budget); code == http.StatusOK {
			lat = append(lat, msSince(t0))
		}
	}
	if len(lat) == 0 {
		return 0, 0, fmt.Errorf("router: no successful tail samples")
	}
	slices.Sort(lat)
	return percentile(lat, 50), percentile(lat, 99), nil
}

func routerBenchGet(h http.Handler, path string) int {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code
}
