// Command rexbench regenerates every table and figure of the REX paper's
// evaluation (Section 5) on the synthetic workload:
//
//	rexbench -exp all            # everything (slow: includes NaiveEnum)
//	rexbench -exp fig7 -quick    # Figure 7 without the NaiveEnum baseline
//	rexbench -exp table1         # the user-study Table 1 (simulated raters)
//	rexbench -exp micro -bench-out BENCH.json   # hot-path micro suite, JSON results
//	rexbench -exp micro -compare BENCH_seed.json  # + delta table vs a committed baseline
//	rexbench -exp macro -preset million         # million-edge KB latency/QPS section
//	rexbench -exp macro -macro-budget-ms 250 -macro-workers 1,4 \
//	    -mutexprofile mutex.pprof               # + anytime-budget and contended phases
//	rexbench -exp ingest -preset million        # write path: O(delta) applies + carry-over
//
// Experiments: fig7, fig8, fig9, fig10, fig11, table1, pathshare, all,
// plus three opt-in perf suites: micro emits machine-readable ns/op, B/op
// and allocs/op per hot-path workload (the trajectory tracked by
// BENCH_seed.json / BENCH.json), and macro generates a preset-sized
// synthetic KB (million ≈ 1.2M relationships), round-trips its CSR
// binary snapshot, and reports Explain latency percentiles plus
// sustained BatchExplain QPS — optionally re-measured under the
// anytime budget (-macro-budget-ms / -macro-budget-expansions) and in
// the contended mode (-macro-workers, -macro-cpu), with a mutex
// contention profile of the whole run via -mutexprofile. See
// EXPERIMENTS.md for the paper-vs-measured record. The ingest suite
// measures the write path: O(delta) overlay applies vs the Clone+Freeze
// rebuild they replace, sustained applies/sec through a live store, and
// swap-to-warm latency plus hit rate of the carried result cache
// (-ingest-deltas, -ingest-ops, -ingest-pairs). The wal suite prices
// durability: the same delta stream through a journaling store under
// fsync=always, interval and off (-wal-deltas, -wal-ops), one
// BENCH.json row per policy.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rex"
	"rex/internal/harness"
)

// parseIntList parses a comma-separated list of positive integers
// ("1,4" → [1 4]); an empty string is an empty list.
func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid entry %q (want positive integers)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// writeMutexProfile dumps the accumulated mutex-contention profile, the
// artifact CI uploads so lock regressions on the query path are visible
// in PRs.
func writeMutexProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, runs the
// selected experiments, prints their tables to stdout, and returns the
// exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rexbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "experiment: fig7, fig8, fig9, fig10, fig11, table1, pathshare, learned, ablation, micro, macro, ingest, wal, router, sync, all")
		benchOut  = fs.String("bench-out", "", "write benchmark results as JSON to this file (with -exp micro/macro)")
		compare   = fs.String("compare", "", "baseline BENCH.json to print a per-workload delta table against (with -exp micro)")
		scale     = fs.Float64("scale", 1, "synthetic KB scale factor")
		seed      = fs.Int64("seed", 42, "workload seed")
		perBucket = fs.Int("pairs", 10, "entity pairs per connectedness bucket")
		quick     = fs.Bool("quick", false, "reduce work: skip NaiveEnum, fewer global samples, shorter k sweep")
		samples   = fs.Int("global-samples", 100, "sampled starts estimating the global distribution")
		raters    = fs.Int("raters", 10, "simulated raters for table1/pathshare")
		preset    = fs.String("preset", "million", "KB size preset for -exp macro: small, medium, million")
		macroQPS  = fs.Float64("macro-qps-seconds", 5, "target duration of each macro throughput phase (0: one batch round)")
		macroPer  = fs.Int("macro-pairs", 5, "macro pairs per connectedness bucket")
		macroRnd  = fs.Int("macro-rounds", 4, "macro latency measurements per pair")
		macroBudM = fs.Int64("macro-budget-ms", 0, "macro anytime budget in wall-clock ms; enables the budgeted latency/contended phases (0: skip)")
		macroBudX = fs.Int("macro-budget-expansions", 0, "macro anytime budget in enumeration expansions (0: none)")
		macroWkr  = fs.String("macro-workers", "", "comma-separated BatchExplain worker counts for the macro contended mode, e.g. 1,4 (empty: skip)")
		macroCPU  = fs.String("macro-cpu", "", "comma-separated GOMAXPROCS settings for the macro contended mode (empty: current)")
		ingDeltas = fs.Int("ingest-deltas", 32, "deltas applied in the ingest sustained phase")
		ingOps    = fs.Int("ingest-ops", 100, "records per ingest delta")
		ingPairs  = fs.Int("ingest-pairs", 24, "hot pairs for the ingest swap-to-warm phase")
		walDeltas = fs.Int("wal-deltas", 64, "deltas applied per fsync policy in the wal suite")
		walOps    = fs.Int("wal-ops", 100, "records per wal-suite delta")
		syDepths  = fs.String("sync-depths", "4,16,64", "comma-separated lag depths (deltas behind) for the sync suite")
		syOps     = fs.Int("sync-ops", 100, "records per sync-suite delta")
		syPreset  = fs.String("sync-preset", "small", "KB size preset for -exp sync")
		rtPreset  = fs.String("router-preset", "small", "KB size preset for -exp router")
		rtN       = fs.Int("router-replicas", 3, "fleet size ceiling for -exp router (QPS runs 1..N)")
		rtWorkers = fs.Int("router-workers", 8, "concurrent clients in the router QPS phases")
		rtSecs    = fs.Float64("router-seconds", 2, "duration of each router QPS phase")
		rtBudget  = fs.Int64("router-budget-ms", 50, "query budget in the router hedging phase (budgeted queries are what hedge)")
		rtStallMS = fs.Int("router-stall-ms", 40, "injected stall length for the router hedging phase")
		rtStallPc = fs.Int("router-stall-pct", 3, "injected stall probability (percent) for the router hedging phase; keep below 5 so the p95-derived hedge delay stays under the stall")
		rtTailN   = fs.Int("router-tail", 400, "sequential samples per hedging mode in the router tail phase")
		rtInproc  = fs.Bool("router-inproc", false, "run router-experiment replicas in-process instead of as child processes")
		rtKB      = fs.String("router-kb", "", "internal: binary KB snapshot for the router-replica child mode")
		rtName    = fs.String("router-name", "", "internal: replica name for the router-replica child mode")
		mutexProf = fs.String("mutexprofile", "", "write a runtime mutex-contention profile of the whole run to this file")
		traceOn   = fs.Bool("trace", false, "profile the per-stage pipeline breakdown (enumerate/match/measure/rank/merge) into the report")
		traceRnd  = fs.Int("trace-rounds", 5, "query rounds per pair for the -trace profile")
		version   = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, "rexbench", rex.Build())
		return 0
	}

	gs := *samples
	if *quick && gs > 25 {
		gs = 25
	}

	if *mutexProf != "" {
		// Sample every fifth contended mutex event: cheap enough to leave
		// on for a whole benchmark run, dense enough that a serializing
		// lock on the query path is unmissable in the profile.
		runtime.SetMutexProfileFraction(5)
		defer runtime.SetMutexProfileFraction(0)
		defer func() {
			if err := writeMutexProfile(*mutexProf); err != nil {
				fmt.Fprintln(stderr, "rexbench: mutex profile:", err)
			} else {
				fmt.Fprintf(stdout, "wrote mutex profile %s\n", *mutexProf)
			}
		}()
	}

	wants := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wants[strings.TrimSpace(e)] = true
	}
	want := func(name string) bool { return wants["all"] || wants[name] }

	// The hidden child mode of the router experiment: this process IS a
	// replica. Nothing else runs.
	if wants["router-replica"] {
		return runRouterReplica(stderr, *rtKB, *rtName, *rtStallMS, *rtStallPc)
	}

	needsEnv := want("fig7") || want("fig8") || want("fig9") || want("fig10") ||
		want("fig11") || want("ablation")
	var env *harness.Env
	if needsEnv {
		start := time.Now()
		env = harness.NewEnv(harness.EnvOptions{
			Scale: *scale, Seed: *seed, PerBucket: *perBucket, GlobalSamples: gs,
		})
		st := env.G.Stats()
		fmt.Fprintf(stdout, "workload: %d entities, %d relationships, %d labels; %d pairs (built in %s)\n",
			st.Nodes, st.Edges, st.Labels, len(env.Pairs), time.Since(start).Round(time.Millisecond))
		for _, b := range harness.Buckets() {
			fmt.Fprintf(stdout, "  %s: %d pairs\n", b, len(env.PairsIn(b)))
		}
	}

	if want("fig7") {
		env.Fig7(*quick).Print(stdout)
	}
	if want("fig8") {
		env.Fig8().Print(stdout)
	}
	if want("fig9") {
		env.Fig9().Print(stdout)
	}
	if want("fig10") {
		ks := []int{1, 5, 10, 20, 50, 100, 200}
		if *quick {
			ks = []int{1, 10, 100}
		}
		env.Fig10(ks).Print(stdout)
	}
	if want("fig11") {
		env.Fig11().Print(stdout)
	}
	if want("ablation") {
		env.Ablation().Print(stdout)
	}
	studyOpt := harness.StudyOptions{
		Scale: *scale, Seed: *seed, NumRaters: *raters, GlobalSamples: gs,
	}
	if want("table1") {
		harness.Table1(studyOpt).Print(stdout)
	}
	if want("pathshare") {
		harness.PathShare(studyOpt).Print(stdout)
	}
	if want("learned") {
		harness.Learned(studyOpt).Print(stdout)
	}
	// The micro, macro and ingest suites are opt-in: they are the
	// hot-path, traffic-shaped and write-path benchmark harnesses behind
	// BENCH.json, not paper figures, so "all" (the paper reproduction)
	// does not imply them. -trace joins them because it feeds the same
	// report document.
	if wants["micro"] || wants["macro"] || wants["ingest"] || wants["wal"] || wants["router"] || wants["sync"] || *traceOn {
		report := newBenchReport()
		if wants["micro"] {
			if err := runMicro(&report, stdout); err != nil {
				fmt.Fprintln(stderr, "rexbench:", err)
				return 1
			}
		}
		if wants["macro"] {
			mWorkers, err := parseIntList(*macroWkr)
			if err != nil {
				fmt.Fprintln(stderr, "rexbench: -macro-workers:", err)
				return 2
			}
			mCPUs, err := parseIntList(*macroCPU)
			if err != nil {
				fmt.Fprintln(stderr, "rexbench: -macro-cpu:", err)
				return 2
			}
			opt := macroOptions{
				Preset: *preset, Seed: *seed, PerBucket: *macroPer, Rounds: *macroRnd,
				QPSSeconds: *macroQPS, BudgetMS: *macroBudM, BudgetExpansions: *macroBudX,
				Workers: mWorkers, CPUs: mCPUs,
			}
			if err := runMacro(&report, stdout, opt); err != nil {
				fmt.Fprintln(stderr, "rexbench:", err)
				return 1
			}
		}
		if *traceOn {
			if err := runTraceProfile(&report, stdout, *traceRnd); err != nil {
				fmt.Fprintln(stderr, "rexbench:", err)
				return 1
			}
		}
		if wants["ingest"] {
			// -preset accepts a comma-separated list for the ingest suite,
			// so one run covers the small/medium/million write-path table.
			for _, p := range strings.Split(*preset, ",") {
				opt := ingestOptions{
					Preset: strings.TrimSpace(p), Seed: *seed,
					Deltas: *ingDeltas, Ops: *ingOps, Pairs: *ingPairs,
				}
				if err := runIngest(&report, stdout, opt); err != nil {
					fmt.Fprintln(stderr, "rexbench:", err)
					return 1
				}
			}
		}
		if wants["router"] {
			opt := routerOptions{
				Preset: *rtPreset, Seed: *seed, Replicas: *rtN, Workers: *rtWorkers,
				Seconds: *rtSecs, BudgetMS: *rtBudget, StallMS: *rtStallMS,
				StallPct: *rtStallPc, TailN: *rtTailN, InProcess: *rtInproc,
			}
			if err := runRouter(&report, stdout, opt); err != nil {
				fmt.Fprintln(stderr, "rexbench:", err)
				return 1
			}
		}
		if wants["sync"] {
			depths, err := parseIntList(*syDepths)
			if err != nil {
				fmt.Fprintln(stderr, "rexbench: -sync-depths:", err)
				return 2
			}
			opt := syncOptions{Preset: *syPreset, Seed: *seed, Depths: depths, Ops: *syOps}
			if err := runSync(&report, stdout, opt); err != nil {
				fmt.Fprintln(stderr, "rexbench:", err)
				return 1
			}
		}
		if wants["wal"] {
			for _, p := range strings.Split(*preset, ",") {
				opt := walOptions{
					Preset: strings.TrimSpace(p), Seed: *seed,
					Deltas: *walDeltas, Ops: *walOps,
				}
				if err := runWAL(&report, stdout, opt); err != nil {
					fmt.Fprintln(stderr, "rexbench:", err)
					return 1
				}
			}
		}
		if *benchOut != "" {
			if err := writeReport(&report, *benchOut, stdout); err != nil {
				fmt.Fprintln(stderr, "rexbench:", err)
				return 1
			}
		}
		if *compare != "" {
			baseline, err := loadReport(*compare)
			if err != nil {
				fmt.Fprintln(stderr, "rexbench:", err)
				return 1
			}
			compareReports(stdout, *compare, baseline, &report)
		}
	} else if *compare != "" {
		fmt.Fprintln(stderr, "rexbench: -compare requires -exp micro (nothing measured to compare)")
		return 2
	}
	return 0
}
