package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"rex"
)

// The trace profile answers "where does an explain go?" with the same
// per-stage instrumentation the server exports: it runs a handful of
// sample-KB queries under rex.WithTrace and aggregates the per-stage
// wall time, call and item counts into BENCH.json, so a PR that shifts
// cost between stages (say, enumeration into measuring) is visible even
// when end-to-end ns/op barely moves.

// traceStage is one pipeline stage of the aggregated profile.
type traceStage struct {
	Stage      string  `json:"stage"`
	TotalMS    float64 `json:"total_ms"`
	Calls      int64   `json:"calls"`
	Items      int64   `json:"items"`
	PctOfTotal float64 `json:"pct_of_total"`
}

// traceReport is the -trace section of BENCH.json.
type traceReport struct {
	Pairs      int          `json:"pairs"`
	Rounds     int          `json:"rounds"`
	Queries    int          `json:"queries"`
	TotalMS    float64      `json:"total_ms"`
	Stages     []traceStage `json:"stages"`
	Expansions int64        `json:"expansions"`
	Merges     int64        `json:"merges"`
	MemoHits   int64        `json:"memo_hits"`
	MemoMisses int64        `json:"memo_misses"`
}

// tracePairs are the profiled queries: the two sample-KB pairs the
// micro suite already tracks, one distant and one adjacent.
func tracePairs() []rex.Pair {
	return []rex.Pair{
		{Start: "kate_winslet", End: "leonardo_dicaprio"},
		{Start: "brad_pitt", End: "angelina_jolie"},
	}
}

// runTraceProfile measures the per-stage breakdown and prints a table.
// The explainer runs uncached so every round exercises the whole
// pipeline rather than the cache fast path.
func runTraceProfile(report *benchReport, stdout io.Writer, rounds int) error {
	ex, err := rex.NewExplainer(rex.SampleKB(), rex.Options{
		Measure: "size+local-dist", TopK: 10, CacheSize: 0,
	})
	if err != nil {
		return err
	}
	pairs := tracePairs()
	tr := &traceReport{Pairs: len(pairs), Rounds: rounds}

	type agg struct {
		ms    float64
		calls int64
		items int64
	}
	stages := map[string]*agg{}
	var order []string
	for r := 0; r < rounds; r++ {
		for _, p := range pairs {
			// Each traced query needs its own context: a trace
			// aggregates everything recorded under it.
			ctx := rex.WithTrace(context.Background())
			res, err := ex.ExplainBudgeted(ctx, p.Start, p.End, rex.Budget{})
			if err != nil {
				return fmt.Errorf("trace profile %s--%s: %w", p.Start, p.End, err)
			}
			rep := res.Trace
			if rep == nil {
				return fmt.Errorf("trace profile %s--%s: no trace attached", p.Start, p.End)
			}
			tr.Queries++
			tr.TotalMS += rep.TotalMS
			tr.Expansions += rep.Expansions
			tr.Merges += rep.Merges
			tr.MemoHits += rep.MemoHits
			tr.MemoMisses += rep.MemoMisses
			for _, st := range rep.Stages {
				a, ok := stages[st.Stage]
				if !ok {
					a = &agg{}
					stages[st.Stage] = a
					order = append(order, st.Stage)
				}
				a.ms += st.DurationMS
				a.calls += st.Calls
				a.items += st.Items
			}
		}
	}
	for _, name := range order {
		a := stages[name]
		pct := 0.0
		if tr.TotalMS > 0 {
			pct = a.ms / tr.TotalMS * 100
		}
		tr.Stages = append(tr.Stages, traceStage{
			Stage: name, TotalMS: a.ms, Calls: a.calls, Items: a.items, PctOfTotal: pct,
		})
	}
	report.Trace = tr

	fmt.Fprintf(stdout, "\ntrace profile: %d queries (%d pairs x %d rounds), %s total\n",
		tr.Queries, tr.Pairs, tr.Rounds, time.Duration(tr.TotalMS*float64(time.Millisecond)).Round(time.Microsecond))
	fmt.Fprintf(stdout, "%-12s %12s %8s %10s %10s\n", "stage", "total_ms", "pct", "calls", "items")
	for _, st := range tr.Stages {
		fmt.Fprintf(stdout, "%-12s %12.3f %7.1f%% %10d %10d\n",
			st.Stage, st.TotalMS, st.PctOfTotal, st.Calls, st.Items)
	}
	fmt.Fprintf(stdout, "expansions=%d merges=%d memo_hits=%d memo_misses=%d\n",
		tr.Expansions, tr.Merges, tr.MemoHits, tr.MemoMisses)
	return nil
}
