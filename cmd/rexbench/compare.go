package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Baseline comparison: `rexbench -exp micro -compare BENCH_seed.json`
// prints a per-workload delta table (ns/op, allocs/op, % change) of the
// freshly measured results against a committed baseline file. The table
// is informational — CI uploads it as an artifact and never fails on
// timing — but allocs/op deltas are hardware-independent and meaningful
// anywhere.

// loadReport reads a BENCH.json document.
func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("rexbench: parse %s: %w", path, err)
	}
	return &r, nil
}

// compareReports prints the delta table of current against baseline.
// Workloads present on only one side are listed as added/removed rather
// than dropped silently.
func compareReports(w io.Writer, baselinePath string, baseline, current *benchReport) {
	fmt.Fprintf(w, "\ndelta vs %s (generated %s)\n", baselinePath, baseline.Generated)
	fmt.Fprintf(w, "%-22s %14s %14s %8s %12s %12s %8s\n",
		"workload", "ns/op(base)", "ns/op(now)", "ns%", "allocs(base)", "allocs(now)", "allocs%")
	base := make(map[string]benchResult, len(baseline.Workloads))
	for _, b := range baseline.Workloads {
		base[b.Name] = b
	}
	seen := make(map[string]bool, len(current.Workloads))
	for _, c := range current.Workloads {
		seen[c.Name] = true
		b, ok := base[c.Name]
		if !ok {
			fmt.Fprintf(w, "%-22s %14s %14.1f %8s %12s %12d %8s   (new workload)\n",
				c.Name, "-", c.NsPerOp, "-", "-", c.AllocsPerOp, "-")
			continue
		}
		fmt.Fprintf(w, "%-22s %14.1f %14.1f %8s %12d %12d %8s\n",
			c.Name, b.NsPerOp, c.NsPerOp, pctCell(b.NsPerOp, c.NsPerOp),
			b.AllocsPerOp, c.AllocsPerOp,
			pctCell(float64(b.AllocsPerOp), float64(c.AllocsPerOp)))
	}
	for _, b := range baseline.Workloads {
		if !seen[b.Name] {
			fmt.Fprintf(w, "%-22s %14.1f %14s %8s %12d %12s %8s   (removed workload)\n",
				b.Name, b.NsPerOp, "-", "-", b.AllocsPerOp, "-", "-")
		}
	}
}

// pctCell renders the relative change from base to now. A zero
// baseline admits no percentage — a workload that regressed from 0
// allocs/op prints "n/a", not +Inf% (the raw columns still show the
// absolute jump).
func pctCell(base, now float64) string {
	if base == 0 {
		if now == 0 {
			return "+0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (now-base)/base*100)
}
