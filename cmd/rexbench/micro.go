package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"rex"
	"rex/internal/enumerate"
	"rex/internal/kb"
	"rex/internal/kbgen"
	"rex/internal/match"
	"rex/internal/pattern"
)

// The micro experiment pins the hot-path primitives to a fixed small
// knowledge base (the curated sample KB: deterministic, loads in
// milliseconds, dense enough to exercise every code path) and emits
// machine-readable results, so the performance trajectory of the
// reproduction is tracked in version control rather than in commit
// messages. BENCH_seed.json holds the pre-optimisation baseline; CI
// regenerates BENCH.json on every run and uploads it as an artifact.
// Numbers are hardware-dependent — the files are for trend reading and
// allocs/op comparisons (which are hardware-independent), not absolute
// timing guarantees.

// benchWorkload is one named workload of the micro suite.
type benchWorkload struct {
	name string
	desc string
	fn   func(b *testing.B)
}

// benchResult is the machine-readable outcome of one workload.
type benchResult struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the BENCH.json document.
type benchReport struct {
	Note      string        `json:"note"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Generated string        `json:"generated"`
	Workloads []benchResult `json:"workloads"`
	// Macro holds the traffic-shaped numbers (million-edge KB latency
	// percentiles and sustained QPS) when -exp macro ran; see macro.go.
	Macro *macroReport `json:"macro,omitempty"`
	// Ingest holds the write-path numbers (O(delta) apply vs rebuild,
	// swap-to-warm, sustained applies/sec), one entry per preset the
	// -exp ingest run covered; see ingest.go.
	Ingest []*ingestReport `json:"ingest,omitempty"`
	// WAL holds the durability-cost numbers (applies/sec through a
	// journaling store per fsync policy) when -exp wal ran; see wal.go.
	WAL []*walReport `json:"wal,omitempty"`
	// Trace holds the per-stage pipeline breakdown when -trace ran; see
	// trace.go.
	Trace *traceReport `json:"trace,omitempty"`
	// Router holds the replicated-tier numbers (QPS vs replica count,
	// hedged vs unhedged tail) when -exp router ran; see router.go.
	Router *routerReport `json:"router,omitempty"`
	// Sync holds the replica catch-up numbers (wall time vs lag depth,
	// WAL-tail replay vs full-snapshot transfer) when -exp sync ran; see
	// sync.go.
	Sync []*syncReport `json:"sync,omitempty"`
}

// newBenchReport stamps the environment header.
func newBenchReport() benchReport {
	return benchReport{
		Note: "REX hot-path micro-benchmarks on the fixed sample KB, plus the optional " +
			"macro section (million-edge KB latency percentiles and sustained QPS) and " +
			"ingest section (write path: O(delta) overlay applies vs Clone+Freeze rebuild, " +
			"sustained applies/sec, swap-to-warm carry-over). " +
			"allocs/op is hardware-independent; ns/op is for trend reading on comparable " +
			"hardware. Baseline: BENCH_seed.json (pre-optimisation seed).",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
}

// writeReport writes the BENCH.json document.
func writeReport(report *benchReport, path string, stdout io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// microWorkloads assembles the suite over the sample KB.
func microWorkloads() []benchWorkload {
	g := kbgen.Sample()
	g.Freeze()
	s := g.NodeByName("brad_pitt")
	e := g.NodeByName("angelina_jolie")
	cfg := enumerate.Config{
		MaxPatternSize: 5,
		PathAlg:        enumerate.PathPrioritized,
		UnionAlg:       enumerate.UnionPrune,
	}
	es := enumerate.Explanations(g, s, e, cfg)
	largest := es[len(es)-1].P
	smallest := es[0].P

	// Pattern rebuild inputs so key workloads cannot amortise the
	// per-pattern caches.
	edges := make([][]pattern.Edge, len(es))
	ns := make([]int, len(es))
	for i, ex := range es {
		edges[i] = append([]pattern.Edge{}, ex.P.Edges()...)
		ns[i] = ex.P.NumVars()
	}
	sch := es[0].P.Schema()

	var re1, re2 *pattern.Explanation
	for _, ex := range es {
		if ex.P.IsPath() && ex.P.NumVars() == 3 {
			if re1 == nil {
				re1 = ex
			} else if re2 == nil {
				re2 = ex
			}
		}
	}

	w := []benchWorkload{
		{
			name: "match_count",
			desc: "steady-state match.Count of the largest enumerated pattern (fixed end)",
			fn: func(b *testing.B) {
				match.Count(g, largest, s, e) // warm the matcher pool
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					match.Count(g, largest, s, e)
				}
			},
		},
		{
			name: "match_count_by_end",
			desc: "match.CountByEndInto of the smallest enumerated pattern (free end, reused table)",
			fn: func(b *testing.B) {
				counts := make(map[kb.NodeID]int)
				if err := match.CountByEndInto(context.Background(), g, smallest, s, counts); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					clear(counts)
					if err := match.CountByEndInto(context.Background(), g, smallest, s, counts); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "canonical_key",
			desc: "canonical form of a freshly rebuilt pattern (cache cannot amortise)",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p := pattern.MustNew(sch, ns[i%len(ns)], edges[i%len(edges)])
					_ = p.CanonicalKey()
				}
			},
		},
		{
			name: "pattern_key",
			desc: "interned 64-bit key of a freshly rebuilt pattern",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p := pattern.MustNew(sch, ns[i%len(ns)], edges[i%len(edges)])
					_ = p.Key()
				}
			},
		},
		{
			name: "enumerate",
			desc: "full explanation enumeration (prioritized paths + pruned union)",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					enumerate.Explanations(g, s, e, cfg)
				}
			},
		},
		{
			name: "explain_end_to_end",
			desc: "uncached rex.Explain under size+local-dist (snapshot-level memo reuse included)",
			fn: func(b *testing.B) {
				kbv := rex.SampleKB()
				ex, err := rex.NewExplainer(kbv, rex.Options{Measure: "size+local-dist", TopK: 10})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ex.Explain("kate_winslet", "leonardo_dicaprio"); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
	if re1 != nil && re2 != nil {
		w = append(w, benchWorkload{
			name: "merge",
			desc: "pattern.Merge of two 3-variable path explanations",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pattern.Merge(re1, re2, 5)
				}
			},
		})
	}
	return w
}

// runMicro executes the micro suite into report and prints a table. It
// returns a non-nil error only for real failures (workload setup) —
// never for timing variance.
func runMicro(report *benchReport, stdout io.Writer) error {
	fmt.Fprintf(stdout, "%-22s %14s %12s %12s\n", "workload", "ns/op", "B/op", "allocs/op")
	for _, w := range microWorkloads() {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			w.fn(b)
		})
		res := benchResult{
			Name:        w.name,
			Description: w.desc,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		report.Workloads = append(report.Workloads, res)
		fmt.Fprintf(stdout, "%-22s %14.1f %12d %12d\n", res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	return nil
}
