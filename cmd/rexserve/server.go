package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"rex"
)

// server is the HTTP serving layer over one Explainer. All handlers are
// safe for concurrent use: the explainer is concurrency-safe and the
// request counters are atomic.
type server struct {
	ex       *rex.Explainer
	kb       *rex.KB
	timeout  time.Duration // per-request deadline
	maxBatch int           // largest accepted /batch pair count
	started  time.Time

	explains atomic.Uint64 // completed /explain queries (incl. batch pairs)
	errors   atomic.Uint64 // queries that returned an error
	timeouts atomic.Uint64 // queries aborted by deadline or cancellation
}

func newServer(ex *rex.Explainer, kb *rex.KB, timeout time.Duration, maxBatch int) *server {
	if maxBatch <= 0 {
		maxBatch = 1024
	}
	return &server{ex: ex, kb: kb, timeout: timeout, maxBatch: maxBatch, started: time.Now()}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// explainResponse wraps one query result for the wire.
type explainResponse struct {
	Result    *rex.Result `json:"result"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// errorResponse is the JSON error shape of every endpoint.
type errorResponse struct {
	Error string `json:"error"`
}

// batchRequest is the /batch input.
type batchRequest struct {
	Pairs []rex.Pair `json:"pairs"`
}

// batchResponse is the /batch output: one entry per requested pair, in
// request order, each carrying either a result or that pair's error.
type batchResponse struct {
	Results   []batchEntry `json:"results"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

type batchEntry struct {
	Start  string      `json:"start"`
	End    string      `json:"end"`
	Result *rex.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// decodeStatus distinguishes an oversized request body (413) from
// malformed JSON (400).
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// errStatus maps a query error to its HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, rex.ErrUnknownEntity):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// note updates the per-query counters.
func (s *server) note(err error) {
	s.explains.Add(1)
	if err == nil {
		return
	}
	s.errors.Add(1)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.timeouts.Add(1)
	}
}

// requestCtx derives the per-request deadline context.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// handleExplain answers GET /explain?start=a&end=b and the equivalent
// POST with a JSON {"start","end"} body.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var p rex.Pair
	switch r.Method {
	case http.MethodGet:
		p.Start = r.URL.Query().Get("start")
		p.End = r.URL.Query().Get("end")
	case http.MethodPost:
		body := http.MaxBytesReader(w, r.Body, 1<<20)
		if err := json.NewDecoder(body).Decode(&p); err != nil {
			writeJSON(w, decodeStatus(err), errorResponse{Error: "invalid JSON body: " + err.Error()})
			return
		}
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET or POST"})
		return
	}
	if p.Start == "" || p.End == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "start and end are required"})
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	t0 := time.Now()
	res, err := s.ex.ExplainContext(ctx, p.Start, p.End)
	s.note(err)
	if err != nil {
		writeJSON(w, errStatus(err), errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{
		Result:    res,
		ElapsedMS: float64(time.Since(t0).Microseconds()) / 1000,
	})
}

// handleBatch answers POST /batch with {"pairs":[{"start","end"},...]},
// fanning the pairs out over the explainer's worker pool with per-pair
// error isolation.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	// Bound the body before decoding: the pair-count limit below cannot
	// protect memory once an unbounded payload has been parsed. Entity
	// names are short, so 1 KiB per allowed pair is generous.
	body := http.MaxBytesReader(w, r.Body, 1<<20+int64(s.maxBatch)*1024)
	var req batchRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, decodeStatus(err), errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if len(req.Pairs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "pairs must be non-empty"})
		return
	}
	if len(req.Pairs) > s.maxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Pairs), s.maxBatch)})
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	t0 := time.Now()
	results := s.ex.BatchExplain(ctx, req.Pairs, rex.BatchOptions{})
	resp := batchResponse{Results: make([]batchEntry, len(results))}
	for i, br := range results {
		s.note(br.Err)
		entry := batchEntry{Start: br.Pair.Start, End: br.Pair.End, Result: br.Result}
		if br.Err != nil {
			entry.Error = br.Err.Error()
		}
		resp.Results[i] = entry
	}
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the /stats snapshot.
type statsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	KB            rex.Stats      `json:"kb"`
	Cache         rex.CacheStats `json:"cache"`
	Queries       queryStats     `json:"queries"`
}

type queryStats struct {
	Explains uint64 `json:"explains"`
	Errors   uint64 `json:"errors"`
	Timeouts uint64 `json:"timeouts"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		KB:            s.kb.Stats(),
		Cache:         s.ex.CacheStats(),
		Queries: queryStats{
			Explains: s.explains.Load(),
			Errors:   s.errors.Load(),
			Timeouts: s.timeouts.Load(),
		},
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
