// Command rexserve serves relationship-explanation queries over HTTP:
//
//	rexserve -kb entertainment.tsv -addr :8080 -timeout 2s -cache 4096
//	rexserve -sample   # serve the built-in sample knowledge base
//
// Endpoints (all JSON):
//
//	GET  /explain?start=a&end=b   one pair (also POST {"start","end"})
//	POST /batch                   {"pairs":[{"start","end"},...]}
//	GET  /stats                   uptime, KB size, cache and query counters
//	GET  /healthz                 liveness probe
//
// Every request runs under the -timeout deadline: queries that exceed it
// are aborted mid-enumeration and answered with 504. Results are cached
// in an LRU keyed by (pair, options) sized by -cache.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"rex"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		kbPath   = flag.String("kb", "", "knowledge base file (default: built-in sample)")
		sample   = flag.Bool("sample", false, "use the built-in sample entertainment KB")
		measureN = flag.String("measure", "size+local-dist", "interestingness measure: "+strings.Join(rex.MeasureNames(), ", "))
		topK     = flag.Int("k", 10, "number of explanations per query")
		maxSize  = flag.Int("size", 5, "pattern size limit (nodes)")
		maxInst  = flag.Int("instances", 3, "max instances per explanation (0 = all)")
		workers  = flag.Int("parallelism", 0, "enumeration worker pool size (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request deadline (0 = none)")
		cacheSz  = flag.Int("cache", 1024, "result cache entries (0 = disable caching)")
		maxBatch = flag.Int("max-batch", 1024, "largest accepted /batch pair count")
	)
	flag.Parse()

	var (
		kb  *rex.KB
		err error
	)
	switch {
	case *kbPath != "":
		kb, err = rex.LoadKB(*kbPath)
		if err != nil {
			fatal(err)
		}
	default:
		_ = sample // the sample KB is also the default
		kb = rex.SampleKB()
	}

	ex, err := rex.NewExplainer(kb, rex.Options{
		MaxPatternSize:             *maxSize,
		Measure:                    *measureN,
		TopK:                       *topK,
		MaxInstancesPerExplanation: *maxInst,
		Parallelism:                *workers,
		CacheSize:                  *cacheSz,
	})
	if err != nil {
		fatal(err)
	}

	st := kb.Stats()
	log.Printf("rexserve: %d entities, %d relationships, %d labels; measure=%s timeout=%v cache=%d",
		st.Nodes, st.Edges, st.Labels, *measureN, *timeout, *cacheSz)
	srv := newServer(ex, kb, *timeout, *maxBatch)
	// Connection-level timeouts: the -timeout flag only bounds query
	// execution, so slow-header, slow-body, slow-reading and idle
	// connections need their own limits or they pin goroutines and
	// descriptors indefinitely. WriteTimeout caps total response time;
	// with -timeout 0 a very long query can hit it first, which is the
	// safer failure mode for a public listener.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("rexserve: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rexserve:", err)
	os.Exit(1)
}
