// Command rexserve serves relationship-explanation queries over HTTP,
// with live knowledge-base updates under traffic:
//
//	rexserve -kb entertainment.tsv -addr :8080 -timeout 2s -cache 4096
//	rexserve -sample   # serve the built-in sample knowledge base
//
// Query endpoints (all JSON):
//
//	GET  /explain?start=a&end=b   one pair (also POST {"start","end"})
//	POST /batch                   {"pairs":[{"start","end"},...]}
//	GET  /stats                   uptime, KB version + size, cache and query counters
//	GET  /healthz                 liveness probe with the active KB generation and build info
//	GET  /metrics                 Prometheus text exposition (latency histograms,
//	                              per-stage query timing, cache/memo/overlay state)
//
// Adding trace=1 (GET) or "trace": true (POST body) to /explain — or
// "trace": true to a /batch body — includes a per-stage trace block in
// each result: wall time, expansions, merges and cache activity per
// pipeline stage, plus which stage consumed the budget on truncation.
//
// Queries at or above -slow-threshold enter an in-memory forensics
// ring served at GET /admin/slow (newest first), and optionally append
// to a -slow-log JSONL file.
//
// Queries accept per-request work budgets — budget_ms (wall clock) and
// budget_expansions (deterministic enumeration bound) as /explain query
// parameters or body fields, and as top-level /batch fields applying to
// every pair. A query that exhausts its budget answers with its best
// explanations found so far and "truncated": true instead of a 504;
// the -budget and -budget-expansions flags set the default for
// requests that don't specify one. Unbudgeted queries are exhaustive.
//
// Admin endpoints (JSON responses):
//
//	POST /admin/delta             stream TSV mutation records; on success the
//	                              server atomically swaps to the new KB version
//	POST /admin/reload            re-read the -kb file from disk and swap it in
//	GET  /admin/snapshot          stream the newest binary checkpoint (ETag =
//	                              fingerprint; supports If-None-Match and Range)
//	GET  /admin/wal?from=G        stream the CRC-framed WAL tail above G
//	                              (410 Gone below the checkpoint horizon)
//	POST /admin/sync?peer=U       kick the sync engine (requires -peers)
//
// With -peers set, the replica self-heals: a background anti-entropy
// loop probes the peers every -sync-interval and, when behind, fetches
// the WAL tail (or a full snapshot when below the peer's checkpoint
// horizon) and catches up through the normal apply path — durable,
// fingerprint-verified, resumable. While catching up the replica keeps
// answering from its current (stale but honest) snapshot unless
// -sync-refuse-stale makes it answer 503 instead.
//
// With -admin-token set, both require "Authorization: Bearer <token>";
// without it they are open, which is only appropriate when the listener
// itself is trusted (loopback or a private network).
//
// With -pprof, the standard net/http/pprof profiling endpoints are
// served under /debug/pprof/ (CPU, heap, goroutine, trace, ...). They
// are off by default and should only be enabled on a trusted listener.
//
// The delta body uses the knowledge-base TSV record syntax plus
// mutation records, replayed in order and applied all-or-nothing:
//
//	node\t<name>\t<type>           add an entity
//	label\t<name>\t<D|U>           register a relationship label
//	edge\t<from>\t<to>\t<label>    add an edge
//	settype\t<name>\t<type>        change an entity's type
//	deledge\t<from>\t<to>\t<label> remove an edge
//
// Swaps are epoch-based: in-flight requests finish on the KB version
// they started with, new requests see the new generation, and each
// version has its own result cache, so stale answers are impossible.
// Every query response carries the generation and content fingerprint
// of the snapshot that computed it.
//
// Every request runs under the -timeout deadline: queries that exceed it
// are aborted mid-enumeration and answered with 504. Results are cached
// in a per-snapshot LRU keyed by (pair, options) sized by -cache.
//
// With -data-dir the live store is crash-safe: every accepted delta is
// appended to a write-ahead log (flushed per -fsync) before the swap
// publishes, the graph is checkpointed periodically, and a restart over
// the same directory recovers the last acknowledged state — including
// after a crash mid-append. The recovered journal wins over -kb.
//
// Overload control: /explain+/batch and /admin mutations each run
// behind a bounded in-flight admission limit (-max-inflight,
// -max-inflight-admin). Requests over the limit queue up to
// -admission-wait, then are shed with 429 and a Retry-After header.
// Probe and scrape endpoints are never shed.
//
// On SIGTERM or SIGINT the server drains gracefully: /healthz flips to
// 503 immediately, in-flight requests finish (bounded by
// -shutdown-timeout), the journal is flushed and closed, and the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rex"
	"rex/internal/serve"
	rexsync "rex/internal/sync"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		kbPath   = flag.String("kb", "", "knowledge base file (default: built-in sample)")
		sample   = flag.Bool("sample", false, "use the built-in sample entertainment KB")
		measureN = flag.String("measure", "size+local-dist", "interestingness measure: "+strings.Join(rex.MeasureNames(), ", "))
		topK     = flag.Int("k", 10, "number of explanations per query")
		maxSize  = flag.Int("size", 5, "pattern size limit (nodes)")
		maxInst  = flag.Int("instances", 3, "max instances per explanation (0 = all)")
		workers  = flag.Int("parallelism", 0, "enumeration worker pool size (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request deadline (0 = none)")
		budgetT  = flag.Duration("budget", 0, "default per-query work budget; on expiry the best-so-far explanations are returned as truncated instead of erroring (0 = none; requests override with budget_ms)")
		budgetX  = flag.Int("budget-expansions", 0, "default per-query enumeration expansion budget, deterministic truncation (0 = none; requests override with budget_expansions)")
		cacheSz  = flag.Int("cache", 1024, "result cache entries per KB snapshot (0 = disable caching)")
		maxBatch = flag.Int("max-batch", 1024, "largest accepted /batch pair count")
		adminTok = flag.String("admin-token", "", "bearer token required by /admin/* (empty = open; only safe on a trusted listener)")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (only safe on a trusted listener)")
		slowThr  = flag.Duration("slow-threshold", serve.DefaultSlowThreshold, "queries at or above this duration enter the slow-query log at /admin/slow")
		slowRing = flag.Int("slow-ring", serve.DefaultSlowRing, "slow-query entries retained in memory")
		slowFile = flag.String("slow-log", "", "append slow-query JSON lines to this file (empty = in-memory ring only)")

		dataDir  = flag.String("data-dir", "", "durability directory (WAL + checkpoints); empty = in-memory only. A directory holding an earlier journal is recovered on boot and wins over -kb")
		fsyncPol = flag.String("fsync", "always", "WAL flush policy: always, interval or off")
		fsyncInt = flag.Duration("fsync-interval", 100*time.Millisecond, "largest unsynced window under -fsync interval")
		ckptEach = flag.Int("checkpoint-every", 64, "checkpoint after this many WAL appends (negative = size-driven only)")
		ckptSize = flag.Int64("checkpoint-bytes", 64<<20, "checkpoint once the WAL exceeds this size (negative = count-driven only)")

		peers   = flag.String("peers", "", "comma-separated base URLs of peer replicas for self-healing catch-up (e.g. http://127.0.0.1:8081,http://127.0.0.1:8082); empty = no sync engine")
		syncInt = flag.Duration("sync-interval", 2*time.Second, "anti-entropy probe period of the background sync loop")
		syncRef = flag.Bool("sync-refuse-stale", false, "answer queries 503 while a catch-up sync is running instead of serving stale-but-honest results")
		name    = flag.String("name", "", "instance name for logs and failpoint scoping (optional)")

		maxInfl  = flag.Int("max-inflight", 0, "largest admitted concurrent /explain+/batch requests (0 = 4×GOMAXPROCS, min 8; negative = unlimited)")
		maxAdmin = flag.Int("max-inflight-admin", 2, "largest admitted concurrent /admin mutations (negative = unlimited)")
		admWait  = flag.Duration("admission-wait", serve.DefaultAdmissionWait, "how long an over-limit request queues before it is shed with 429")
		drainTO  = flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight requests after SIGTERM/SIGINT before the listener is closed hard")

		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("rexserve", rex.Build())
		return
	}

	opt := rex.Options{
		MaxPatternSize:             *maxSize,
		Measure:                    *measureN,
		TopK:                       *topK,
		MaxInstancesPerExplanation: *maxInst,
		Parallelism:                *workers,
		CacheSize:                  *cacheSz,
		Budget:                     rex.Budget{Timeout: *budgetT, MaxExpansions: *budgetX},
		Durability: rex.DurabilityOptions{
			Dir:             *dataDir,
			Fsync:           *fsyncPol,
			FsyncInterval:   *fsyncInt,
			CheckpointEvery: *ckptEach,
			CheckpointBytes: *ckptSize,
		},
	}
	var (
		store *rex.Store
		err   error
	)
	switch {
	case *kbPath != "":
		store, err = rex.OpenStore(*kbPath, opt)
	default:
		_ = sample // the sample KB is also the default
		store, err = rex.NewStore(rex.SampleKB(), opt)
	}
	if err != nil {
		fatal(err)
	}

	snap := store.Current()
	st := snap.KB.Stats()
	log.Printf("rexserve: %d entities, %d relationships, %d labels; generation %d fingerprint %s; measure=%s timeout=%v cache=%d",
		st.Nodes, st.Edges, st.Labels, snap.Generation, snap.Fingerprint, *measureN, *timeout, *cacheSz)
	if ds := store.DurabilityStats(); ds.Enabled {
		log.Printf("rexserve: durable in %s (fsync=%s): checkpoint generation %d, %d WAL records replayed, torn tail: %v",
			*dataDir, *fsyncPol, ds.CheckpointGen, ds.Replayed, ds.TornTail)
	}
	srv := serve.New(store, serve.Config{
		KBPath:     *kbPath,
		AdminToken: *adminTok,
		Timeout:    *timeout,
		MaxBatch:   *maxBatch,
		Pprof:      *pprofOn,
		Name:       *name,
	})
	var engine *rexsync.Engine
	if *peers != "" {
		peerURLs, err := rexsync.ValidatePeers(*peers)
		if err != nil {
			fatal(err)
		}
		spool := os.TempDir()
		if *dataDir != "" {
			// Spool partial snapshots next to the journal: same filesystem,
			// survives restarts, cleaned up by the engine on completion.
			spool = *dataDir
		}
		engine, err = rexsync.New(store, rexsync.Config{
			Peers:      peerURLs,
			AdminToken: *adminTok,
			Interval:   *syncInt,
			SpoolDir:   spool,
			Logf:       log.Printf,
		})
		if err != nil {
			fatal(err)
		}
		srv.SetSync(engine, *syncRef)
		engine.Start()
		log.Printf("rexserve: sync engine watching %d peer(s) every %v", len(peerURLs), *syncInt)
	}
	q, a := *maxInfl, *maxAdmin
	if q == 0 {
		q, _ = serve.AdmissionDefaults()
	}
	srv.SetAdmission(q, a, *admWait)
	var slowSink io.Writer
	if *slowFile != "" {
		f, err := os.OpenFile(*slowFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		slowSink = f
	}
	srv.SetSlowLog(*slowThr, *slowRing, slowSink)
	// Connection-level timeouts: the -timeout flag only bounds query
	// execution, so slow-header, slow-body, slow-reading and idle
	// connections need their own limits or they pin goroutines and
	// descriptors indefinitely. WriteTimeout caps total response time;
	// with -timeout 0 a very long query can hit it first, which is the
	// safer failure mode for a public listener. ReadTimeout must leave
	// room for a large /admin/delta body to stream over a slow link —
	// at five minutes a maxDeltaBytes body still fits above ~7 Mbps,
	// while ReadHeaderTimeout keeps slow-loris protection tight.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("rexserve: listening on %s", *addr)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	// Graceful shutdown: on SIGTERM/SIGINT flip /healthz to 503 first
	// (so load balancers drain this instance), then let in-flight
	// requests finish under http.Server.Shutdown, close the durability
	// journal, and exit 0. A second signal — or the -shutdown-timeout
	// deadline — closes the listener hard.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		log.Printf("rexserve: %v received; draining (healthz now 503)", sig)
		srv.StartDraining()
		if engine != nil {
			engine.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		done := make(chan error, 1)
		go func() { done <- hs.Shutdown(ctx) }()
		select {
		case err := <-done:
			if err != nil {
				log.Printf("rexserve: drain deadline exceeded, closing: %v", err)
				hs.Close() //nolint:errcheck // exiting anyway
			}
		case sig := <-sigc:
			log.Printf("rexserve: second %v, closing immediately", sig)
			hs.Close() //nolint:errcheck
		}
		cancel()
		if err := store.Close(); err != nil {
			fatal(fmt.Errorf("closing store: %w", err))
		}
		log.Printf("rexserve: shutdown complete")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rexserve:", err)
	os.Exit(1)
}
