// Command rexserve serves relationship-explanation queries over HTTP,
// with live knowledge-base updates under traffic:
//
//	rexserve -kb entertainment.tsv -addr :8080 -timeout 2s -cache 4096
//	rexserve -sample   # serve the built-in sample knowledge base
//
// Query endpoints (all JSON):
//
//	GET  /explain?start=a&end=b   one pair (also POST {"start","end"})
//	POST /batch                   {"pairs":[{"start","end"},...]}
//	GET  /stats                   uptime, KB version + size, cache and query counters
//	GET  /healthz                 liveness probe with the active KB generation and build info
//	GET  /metrics                 Prometheus text exposition (latency histograms,
//	                              per-stage query timing, cache/memo/overlay state)
//
// Adding trace=1 (GET) or "trace": true (POST body) to /explain — or
// "trace": true to a /batch body — includes a per-stage trace block in
// each result: wall time, expansions, merges and cache activity per
// pipeline stage, plus which stage consumed the budget on truncation.
//
// Queries at or above -slow-threshold enter an in-memory forensics
// ring served at GET /admin/slow (newest first), and optionally append
// to a -slow-log JSONL file.
//
// Queries accept per-request work budgets — budget_ms (wall clock) and
// budget_expansions (deterministic enumeration bound) as /explain query
// parameters or body fields, and as top-level /batch fields applying to
// every pair. A query that exhausts its budget answers with its best
// explanations found so far and "truncated": true instead of a 504;
// the -budget and -budget-expansions flags set the default for
// requests that don't specify one. Unbudgeted queries are exhaustive.
//
// Admin endpoints (JSON responses):
//
//	POST /admin/delta             stream TSV mutation records; on success the
//	                              server atomically swaps to the new KB version
//	POST /admin/reload            re-read the -kb file from disk and swap it in
//
// With -admin-token set, both require "Authorization: Bearer <token>";
// without it they are open, which is only appropriate when the listener
// itself is trusted (loopback or a private network).
//
// With -pprof, the standard net/http/pprof profiling endpoints are
// served under /debug/pprof/ (CPU, heap, goroutine, trace, ...). They
// are off by default and should only be enabled on a trusted listener.
//
// The delta body uses the knowledge-base TSV record syntax plus
// mutation records, replayed in order and applied all-or-nothing:
//
//	node\t<name>\t<type>           add an entity
//	label\t<name>\t<D|U>           register a relationship label
//	edge\t<from>\t<to>\t<label>    add an edge
//	settype\t<name>\t<type>        change an entity's type
//	deledge\t<from>\t<to>\t<label> remove an edge
//
// Swaps are epoch-based: in-flight requests finish on the KB version
// they started with, new requests see the new generation, and each
// version has its own result cache, so stale answers are impossible.
// Every query response carries the generation and content fingerprint
// of the snapshot that computed it.
//
// Every request runs under the -timeout deadline: queries that exceed it
// are aborted mid-enumeration and answered with 504. Results are cached
// in a per-snapshot LRU keyed by (pair, options) sized by -cache.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"rex"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		kbPath   = flag.String("kb", "", "knowledge base file (default: built-in sample)")
		sample   = flag.Bool("sample", false, "use the built-in sample entertainment KB")
		measureN = flag.String("measure", "size+local-dist", "interestingness measure: "+strings.Join(rex.MeasureNames(), ", "))
		topK     = flag.Int("k", 10, "number of explanations per query")
		maxSize  = flag.Int("size", 5, "pattern size limit (nodes)")
		maxInst  = flag.Int("instances", 3, "max instances per explanation (0 = all)")
		workers  = flag.Int("parallelism", 0, "enumeration worker pool size (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request deadline (0 = none)")
		budgetT  = flag.Duration("budget", 0, "default per-query work budget; on expiry the best-so-far explanations are returned as truncated instead of erroring (0 = none; requests override with budget_ms)")
		budgetX  = flag.Int("budget-expansions", 0, "default per-query enumeration expansion budget, deterministic truncation (0 = none; requests override with budget_expansions)")
		cacheSz  = flag.Int("cache", 1024, "result cache entries per KB snapshot (0 = disable caching)")
		maxBatch = flag.Int("max-batch", 1024, "largest accepted /batch pair count")
		adminTok = flag.String("admin-token", "", "bearer token required by /admin/* (empty = open; only safe on a trusted listener)")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (only safe on a trusted listener)")
		slowThr  = flag.Duration("slow-threshold", defaultSlowThreshold, "queries at or above this duration enter the slow-query log at /admin/slow")
		slowRing = flag.Int("slow-ring", defaultSlowRing, "slow-query entries retained in memory")
		slowFile = flag.String("slow-log", "", "append slow-query JSON lines to this file (empty = in-memory ring only)")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("rexserve", rex.Build())
		return
	}

	opt := rex.Options{
		MaxPatternSize:             *maxSize,
		Measure:                    *measureN,
		TopK:                       *topK,
		MaxInstancesPerExplanation: *maxInst,
		Parallelism:                *workers,
		CacheSize:                  *cacheSz,
		Budget:                     rex.Budget{Timeout: *budgetT, MaxExpansions: *budgetX},
	}
	var (
		store *rex.Store
		err   error
	)
	switch {
	case *kbPath != "":
		store, err = rex.OpenStore(*kbPath, opt)
	default:
		_ = sample // the sample KB is also the default
		store, err = rex.NewStore(rex.SampleKB(), opt)
	}
	if err != nil {
		fatal(err)
	}

	snap := store.Current()
	st := snap.KB.Stats()
	log.Printf("rexserve: %d entities, %d relationships, %d labels; generation %d fingerprint %s; measure=%s timeout=%v cache=%d",
		st.Nodes, st.Edges, st.Labels, snap.Generation, snap.Fingerprint, *measureN, *timeout, *cacheSz)
	srv := newServer(store, *kbPath, *timeout, *maxBatch)
	srv.adminToken = *adminTok
	srv.pprof = *pprofOn
	var slowSink io.Writer
	if *slowFile != "" {
		f, err := os.OpenFile(*slowFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		slowSink = f
	}
	srv.setSlowLog(*slowThr, *slowRing, slowSink)
	// Connection-level timeouts: the -timeout flag only bounds query
	// execution, so slow-header, slow-body, slow-reading and idle
	// connections need their own limits or they pin goroutines and
	// descriptors indefinitely. WriteTimeout caps total response time;
	// with -timeout 0 a very long query can hit it first, which is the
	// safer failure mode for a public listener. ReadTimeout must leave
	// room for a large /admin/delta body to stream over a slow link —
	// at five minutes a maxDeltaBytes body still fits above ~7 Mbps,
	// while ReadHeaderTimeout keeps slow-loris protection tight.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("rexserve: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rexserve:", err)
	os.Exit(1)
}
