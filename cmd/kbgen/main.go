// Command kbgen generates synthetic entertainment knowledge bases in the
// REX TSV or binary format and optionally samples connectedness-bucketed
// entity pairs for experiments:
//
//	kbgen -scale 1 -seed 42 -out kb.tsv
//	kbgen -preset million -out kb.bin          # 1.2M-edge KB, CSR binary snapshot
//	kbgen -scale 10 -pairs 10 -out kb.tsv -pairs-out pairs.tsv
//
// Generation is deterministic in -seed: the same flags always produce
// the byte-identical knowledge base (same content fingerprint). The
// -preset sizes (small, medium, million) are shared with the macro
// benchmark in rexbench.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rex/internal/kbgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, generates and
// saves the knowledge base (and optional pair sample), and returns the
// exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kbgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale    = fs.Float64("scale", 1, "knowledge base scale factor (75 ≈ paper scale)")
		preset   = fs.String("preset", "", "named size preset: small, medium, million (overrides -scale)")
		seed     = fs.Int64("seed", 42, "generation seed (same seed ⇒ identical KB)")
		out      = fs.String("out", "kb.tsv", "output path (.bin selects the fast CSR binary snapshot)")
		pairs    = fs.Int("pairs", 0, "sample this many pairs per connectedness bucket")
		pairsOut = fs.String("pairs-out", "", "pairs output path (default stdout)")
		sample   = fs.Bool("sample", false, "emit the curated sample KB instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	opt := kbgen.Options{Scale: *scale, Seed: *seed}
	if *preset != "" {
		var err error
		opt, err = kbgen.PresetOptions(*preset, *seed)
		if err != nil {
			fmt.Fprintln(stderr, "kbgen:", err)
			return 2
		}
	}
	g := kbgen.Generate(opt)
	if *sample {
		g = kbgen.Sample()
	}
	save := g.SaveTSV
	if strings.HasSuffix(*out, ".bin") {
		save = g.SaveBinary // fast CSR binary snapshot, auto-detected on load
	}
	if err := save(*out); err != nil {
		fmt.Fprintln(stderr, "kbgen:", err)
		return 1
	}
	st := g.Stats()
	fmt.Fprintf(stdout, "wrote %s: %d entities, %d relationships, %d labels (max degree %d, avg %.1f, fingerprint %s)\n",
		*out, st.Nodes, st.Edges, st.Labels, st.MaxDegree, st.AvgDegree, g.Fingerprint())

	if *pairs > 0 {
		ps := kbgen.SamplePairs(g, kbgen.PairOptions{PerBucket: *pairs, Seed: *seed + 1})
		w := bufio.NewWriter(stdout)
		if *pairsOut != "" {
			f, err := os.Create(*pairsOut)
			if err != nil {
				fmt.Fprintln(stderr, "kbgen:", err)
				return 1
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		for _, p := range ps {
			fmt.Fprintf(w, "%s\t%s\t%d\t%s\n",
				g.NodeName(p.Start), g.NodeName(p.End), p.Connectedness, p.Bucket)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(stderr, "kbgen:", err)
			return 1
		}
		fmt.Fprintf(stdout, "sampled %d pairs\n", len(ps))
	}
	return 0
}
