// Command kbgen generates synthetic entertainment knowledge bases in the
// REX TSV format and optionally samples connectedness-bucketed entity
// pairs for experiments:
//
//	kbgen -scale 1 -seed 42 -out kb.tsv
//	kbgen -scale 10 -pairs 10 -out kb.tsv -pairs-out pairs.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"rex/internal/kbgen"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1, "knowledge base scale factor (75 ≈ paper scale)")
		seed     = flag.Int64("seed", 42, "generation seed")
		out      = flag.String("out", "kb.tsv", "output TSV path")
		pairs    = flag.Int("pairs", 0, "sample this many pairs per connectedness bucket")
		pairsOut = flag.String("pairs-out", "", "pairs output path (default stdout)")
		sample   = flag.Bool("sample", false, "emit the curated sample KB instead of generating")
	)
	flag.Parse()

	g := kbgen.Generate(kbgen.Options{Scale: *scale, Seed: *seed})
	if *sample {
		g = kbgen.Sample()
	}
	save := g.SaveTSV
	if strings.HasSuffix(*out, ".bin") {
		save = g.SaveBinary // fast binary format, auto-detected on load
	}
	if err := save(*out); err != nil {
		fatal(err)
	}
	st := g.Stats()
	fmt.Printf("wrote %s: %d entities, %d relationships, %d labels (max degree %d, avg %.1f)\n",
		*out, st.Nodes, st.Edges, st.Labels, st.MaxDegree, st.AvgDegree)

	if *pairs > 0 {
		ps := kbgen.SamplePairs(g, kbgen.PairOptions{PerBucket: *pairs, Seed: *seed + 1})
		w := bufio.NewWriter(os.Stdout)
		if *pairsOut != "" {
			f, err := os.Create(*pairsOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		for _, p := range ps {
			fmt.Fprintf(w, "%s\t%s\t%d\t%s\n",
				g.NodeName(p.Start), g.NodeName(p.End), p.Connectedness, p.Bucket)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("sampled %d pairs\n", len(ps))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kbgen:", err)
	os.Exit(1)
}
