package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestRunSmoke generates a small KB into a temp file and checks the
// summary line.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "kb.tsv")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scale", "0.1", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Errorf("missing summary line in %q", stdout.String())
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("output not written: %v", err)
	}
}

// TestRunPresetDeterministic runs the small preset twice with one seed
// and asserts identical reported fingerprints — the CLI-level face of
// the kbgen reproducibility contract.
func TestRunPresetDeterministic(t *testing.T) {
	dir := t.TempDir()
	fpRe := regexp.MustCompile(`fingerprint ([0-9a-f]{16})`)
	var fps []string
	for i := 0; i < 2; i++ {
		out := filepath.Join(dir, "kb.bin")
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-preset", "small", "-seed", "9", "-out", out}, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		m := fpRe.FindStringSubmatch(stdout.String())
		if m == nil {
			t.Fatalf("no fingerprint in %q", stdout.String())
		}
		fps = append(fps, m[1])
	}
	if fps[0] != fps[1] {
		t.Errorf("same preset+seed produced fingerprints %s and %s", fps[0], fps[1])
	}
}

// TestRunBadFlags covers the error paths.
func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-preset", "galactic"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown preset: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}
