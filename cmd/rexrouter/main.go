// Command rexrouter fronts a fleet of rexserve replicas with
// consistent-hash routing, health-checked failover, circuit breakers
// and request hedging:
//
//	rexrouter -addr :8090 -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	rexrouter -replicas r1=http://10.0.0.1:8080,r2=http://10.0.0.2:8080
//
// Endpoints (all JSON unless noted):
//
//	GET/POST /explain       routed to the (pair, budget) key's owner, with
//	                        failover down the key's deterministic chain
//	POST     /batch         scattered by key ownership, gathered in request
//	                        order; the answer is always a single generation
//	POST     /admin/delta   broadcast to every replica, serialised so the
//	                        whole fleet applies deltas in one order
//	GET      /healthz       tier health: routable count, generation floor,
//	                        one row per replica (health, drain, breaker)
//	GET      /metrics       Prometheus text exposition (routing counters,
//	                        hedge outcomes, per-replica gauges)
//
// Replicas are health-checked every -health-interval against their
// /healthz: a 200 is routable, a draining 503 is honored by bleeding
// the replica without killing in-flight work, anything else is marked
// down. Connect failures mark a replica down immediately — a killed
// process stops receiving traffic at the next attempt, not the next
// probe.
//
// Per-replica circuit breakers open after -breaker-threshold
// consecutive failures and probe again after an exponentially growing,
// jittered backoff. A 429 shed from a replica is forwarded untouched
// and never counts as a failure: shed is shed, and retrying shed into
// an overloaded fleet only deepens the overload.
//
// Budgeted queries hedge: when the primary attempt outlives the
// observed p95 latency (clamped to [-hedge-min, -hedge-max]), a
// duplicate fires one position down the failover chain carrying the
// same X-Request-Id; the first answer wins and the loser is cancelled.
// -no-hedge disables the mechanism (the rexbench comparison mode).
//
// Every response below the router's generation floor — the largest KB
// generation any client has seen — is discarded and re-routed, so no
// client ever observes the knowledge base moving backwards across
// failovers, hedges or delta broadcasts.
//
// Replicas the router catches below the floor — rejected answers,
// failed broadcasts, or a health probe after a cold restart — are
// marked lagging: excluded from routing and delta fan-out (applying a
// broadcast onto stale state would fork their history) and kicked to
// catch up via POST /admin/sync against the freshest peer, at most one
// kick per -sync-kick-interval per replica. The next probe that shows
// a lagging replica back at the floor re-admits it; no operator action
// is involved at any point.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rex"
	"rex/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs, each optionally name=url (required)")
		healthIv = flag.Duration("health-interval", time.Second, "replica /healthz polling period")
		timeout  = flag.Duration("timeout", 0, "per-attempt replica request deadline (0 = none; replicas enforce their own)")
		retries  = flag.Int("retries", 3, "failover-chain passes per request before giving up")
		retryB   = flag.Duration("retry-base", 50*time.Millisecond, "first inter-pass backoff (doubles per pass, jittered)")
		retryM   = flag.Duration("retry-max", 2*time.Second, "inter-pass backoff cap")
		hedgeMin = flag.Duration("hedge-min", 10*time.Millisecond, "smallest hedge delay for budgeted queries")
		hedgeMax = flag.Duration("hedge-max", 2*time.Second, "largest hedge delay (also used until p95 warms up)")
		noHedge  = flag.Bool("no-hedge", false, "disable request hedging")
		brkThr   = flag.Int("breaker-threshold", 3, "consecutive failures before a replica's breaker opens")
		brkBase  = flag.Duration("breaker-base", 200*time.Millisecond, "first breaker-open interval (doubles per reopen, jittered)")
		brkMax   = flag.Duration("breaker-max", 10*time.Second, "breaker-open interval cap")
		vnodes   = flag.Int("vnodes", 0, "hash-ring points per replica (0 = default 64)")
		kickIv   = flag.Duration("sync-kick-interval", 5*time.Second, "minimum spacing between catch-up kicks per lagging replica")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("rexrouter", rex.Build())
		return
	}
	rcs, err := parseReplicas(*replicas)
	if err != nil {
		fatal(err)
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:         rcs,
		Client:           client,
		HealthInterval:   *healthIv,
		Retries:          *retries,
		RetryBase:        *retryB,
		RetryMax:         *retryM,
		HedgeMin:         *hedgeMin,
		HedgeMax:         *hedgeMax,
		DisableHedging:   *noHedge,
		BreakerThreshold: *brkThr,
		BreakerBase:      *brkBase,
		BreakerMax:       *brkMax,
		VNodes:           *vnodes,
		SyncKickInterval: *kickIv,
	})
	if err != nil {
		fatal(err)
	}
	rt.Start()
	defer rt.Close()
	log.Printf("rexrouter: routing %d replicas, health every %v, hedging %s",
		len(rcs), *healthIv, map[bool]string{true: "off", false: "on"}[*noHedge])
	for _, rc := range rcs {
		log.Printf("rexrouter: replica %s at %s", rc.Name, rc.URL)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("rexrouter: listening on %s", *addr)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		// The router holds only soft state, so shutdown is just closing
		// the listener; clients retry against a standby router and lose
		// nothing but a health-check round of warmup.
		log.Printf("rexrouter: %v received; closing", sig)
		hs.Close() //nolint:errcheck // exiting anyway
	}
}

// parseReplicas turns "name=url,name=url" (names optional) into replica
// configs, defaulting names to r0, r1, ... in flag order.
func parseReplicas(s string) ([]cluster.ReplicaConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-replicas is required (comma-separated base URLs)")
	}
	var rcs []cluster.ReplicaConfig
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rc := cluster.ReplicaConfig{Name: fmt.Sprintf("r%d", i)}
		if eq := strings.Index(part, "="); eq > 0 && !strings.Contains(part[:eq], "/") {
			rc.Name, part = part[:eq], part[eq+1:]
		}
		rc.URL = part
		rcs = append(rcs, rc)
	}
	if len(rcs) == 0 {
		return nil, fmt.Errorf("-replicas is required (comma-separated base URLs)")
	}
	return rcs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rexrouter:", err)
	os.Exit(1)
}
