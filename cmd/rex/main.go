// Command rex explains the relationship between a pair of entities in a
// knowledge base:
//
//	rex -kb entertainment.tsv -start brad_pitt -end angelina_jolie
//	rex -sample -start tom_cruise -end will_smith -measure local-dist -k 5
//
// With no -kb flag the built-in sample entertainment knowledge base is
// used (equivalent to -sample). A -timeout bounds the query; exceeding it
// exits with an error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rex"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, executes one
// explanation query, renders it to stdout, and returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rex", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kbPath    = fs.String("kb", "", "knowledge base TSV file (default: built-in sample)")
		sample    = fs.Bool("sample", false, "use the built-in sample entertainment KB")
		start     = fs.String("start", "", "start entity name (required)")
		end       = fs.String("end", "", "end entity name (required)")
		measureN  = fs.String("measure", "size+local-dist", "interestingness measure: "+strings.Join(rex.MeasureNames(), ", "))
		topK      = fs.Int("k", 10, "number of explanations to return")
		maxSize   = fs.Int("size", 5, "pattern size limit (nodes)")
		pathAlg   = fs.String("path", "prioritized", "path enumeration: naive, basic, prioritized")
		unionAlg  = fs.String("union", "prune", "path union: basic, prune")
		maxInst   = fs.Int("instances", 3, "max instances to print per explanation (0 = all)")
		showSQL   = fs.Bool("sql", false, "print the distributional SQL for each explanation")
		noPruning = fs.Bool("no-pruning", false, "disable ranking-time pruning")
		jsonOut   = fs.Bool("json", false, "emit the result as JSON")
		decorate  = fs.Bool("decorate", false, "attach non-essential context facts to each explanation")
		workers   = fs.Int("parallelism", 0, "enumeration worker pool size (0 = GOMAXPROCS)")
		timeout   = fs.Duration("timeout", 0, "query deadline (0 = none)")
		traceOn   = fs.Bool("trace", false, "print the per-stage query trace (included in -json output)")
		version   = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, "rex", rex.Build())
		return 0
	}

	if *start == "" || *end == "" {
		fmt.Fprintln(stderr, "rex: -start and -end are required")
		fs.Usage()
		return 2
	}

	var (
		kb  *rex.KB
		err error
	)
	switch {
	case *kbPath != "":
		kb, err = rex.LoadKB(*kbPath)
		if err != nil {
			fmt.Fprintln(stderr, "rex:", err)
			return 1
		}
	default:
		_ = sample // the sample KB is also the default
		kb = rex.SampleKB()
	}

	ex, err := rex.NewExplainer(kb, rex.Options{
		MaxPatternSize:             *maxSize,
		PathAlgorithm:              *pathAlg,
		UnionAlgorithm:             *unionAlg,
		Measure:                    *measureN,
		TopK:                       *topK,
		DisablePruning:             *noPruning,
		MaxInstancesPerExplanation: *maxInst,
		Decorate:                   *decorate,
		Parallelism:                *workers,
	})
	if err != nil {
		fmt.Fprintln(stderr, "rex:", err)
		return 1
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *traceOn {
		ctx = rex.WithTrace(ctx)
	}
	res, err := ex.ExplainContext(ctx, *start, *end)
	if err != nil {
		fmt.Fprintln(stderr, "rex:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, "rex:", err)
			return 1
		}
		return 0
	}

	st := kb.Stats()
	fmt.Fprintf(stdout, "knowledge base: %d entities, %d relationships, %d labels\n",
		st.Nodes, st.Edges, st.Labels)
	fmt.Fprintf(stdout, "top %d explanations for (%s, %s) by %s:\n\n",
		len(res.Explanations), res.Start, res.End, res.Measure)
	for i, e := range res.Explanations {
		kind := "pattern"
		if e.IsPath {
			kind = "path"
		}
		fmt.Fprintf(stdout, "%2d. [%s, size %d, %d instance(s), monocount %d] score=%v\n",
			i+1, kind, e.Size, e.NumInstances, e.Monocount, e.Score)
		fmt.Fprintf(stdout, "    %s\n", e.Pattern)
		for _, in := range e.Instances {
			fmt.Fprintf(stdout, "      instance: %s\n", strings.Join(in.Bindings, ", "))
		}
		for _, d := range e.Decorations {
			fmt.Fprintf(stdout, "      also: %s\n", d)
		}
		if *showSQL {
			fmt.Fprintln(stdout, "    distributional SQL:")
			for _, line := range strings.Split(e.SQL, "\n") {
				fmt.Fprintf(stdout, "      %s\n", line)
			}
		}
		fmt.Fprintln(stdout)
	}
	if len(res.Explanations) == 0 {
		fmt.Fprintln(stdout, "no explanations found within the pattern size limit")
	}
	if *traceOn && res.Trace != nil {
		printTrace(stdout, res.Trace)
	}
	return 0
}

// printTrace renders the per-stage query trace as a table.
func printTrace(w io.Writer, tr *rex.QueryTrace) {
	fmt.Fprintf(w, "query trace: %.3fms total\n", tr.TotalMS)
	fmt.Fprintf(w, "  %-12s %12s %8s %10s\n", "stage", "ms", "calls", "items")
	for _, st := range tr.Stages {
		fmt.Fprintf(w, "  %-12s %12.3f %8d %10d\n", st.Stage, st.DurationMS, st.Calls, st.Items)
	}
	fmt.Fprintf(w, "  expansions=%d merges=%d memo=%d/%d walk-cache=%d/%d\n",
		tr.Expansions, tr.Merges, tr.MemoHits, tr.MemoHits+tr.MemoMisses,
		tr.WalkCacheHits, tr.WalkCacheHits+tr.WalkCacheMisses)
	if tr.TruncatedBy != "" {
		fmt.Fprintf(w, "  truncated by: %s\n", tr.TruncatedBy)
	}
}
