// Command rex explains the relationship between a pair of entities in a
// knowledge base:
//
//	rex -kb entertainment.tsv -start brad_pitt -end angelina_jolie
//	rex -sample -start tom_cruise -end will_smith -measure local-dist -k 5
//
// With no -kb flag the built-in sample entertainment knowledge base is
// used (equivalent to -sample).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rex"
)

func main() {
	var (
		kbPath    = flag.String("kb", "", "knowledge base TSV file (default: built-in sample)")
		sample    = flag.Bool("sample", false, "use the built-in sample entertainment KB")
		start     = flag.String("start", "", "start entity name (required)")
		end       = flag.String("end", "", "end entity name (required)")
		measureN  = flag.String("measure", "size+local-dist", "interestingness measure: "+strings.Join(rex.MeasureNames(), ", "))
		topK      = flag.Int("k", 10, "number of explanations to return")
		maxSize   = flag.Int("size", 5, "pattern size limit (nodes)")
		pathAlg   = flag.String("path", "prioritized", "path enumeration: naive, basic, prioritized")
		unionAlg  = flag.String("union", "prune", "path union: basic, prune")
		maxInst   = flag.Int("instances", 3, "max instances to print per explanation (0 = all)")
		showSQL   = flag.Bool("sql", false, "print the distributional SQL for each explanation")
		noPruning = flag.Bool("no-pruning", false, "disable ranking-time pruning")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON")
		decorate  = flag.Bool("decorate", false, "attach non-essential context facts to each explanation")
	)
	flag.Parse()

	if *start == "" || *end == "" {
		fmt.Fprintln(os.Stderr, "rex: -start and -end are required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		kb  *rex.KB
		err error
	)
	switch {
	case *kbPath != "":
		kb, err = rex.LoadKB(*kbPath)
		if err != nil {
			fatal(err)
		}
	default:
		_ = sample // the sample KB is also the default
		kb = rex.SampleKB()
	}

	ex, err := rex.NewExplainer(kb, rex.Options{
		MaxPatternSize:             *maxSize,
		PathAlgorithm:              *pathAlg,
		UnionAlgorithm:             *unionAlg,
		Measure:                    *measureN,
		TopK:                       *topK,
		DisablePruning:             *noPruning,
		MaxInstancesPerExplanation: *maxInst,
		Decorate:                   *decorate,
	})
	if err != nil {
		fatal(err)
	}

	res, err := ex.Explain(*start, *end)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	st := kb.Stats()
	fmt.Printf("knowledge base: %d entities, %d relationships, %d labels\n",
		st.Nodes, st.Edges, st.Labels)
	fmt.Printf("top %d explanations for (%s, %s) by %s:\n\n",
		len(res.Explanations), res.Start, res.End, res.Measure)
	for i, e := range res.Explanations {
		kind := "pattern"
		if e.IsPath {
			kind = "path"
		}
		fmt.Printf("%2d. [%s, size %d, %d instance(s), monocount %d] score=%v\n",
			i+1, kind, e.Size, e.NumInstances, e.Monocount, e.Score)
		fmt.Printf("    %s\n", e.Pattern)
		for _, in := range e.Instances {
			fmt.Printf("      instance: %s\n", strings.Join(in.Bindings, ", "))
		}
		for _, d := range e.Decorations {
			fmt.Printf("      also: %s\n", d)
		}
		if *showSQL {
			fmt.Println("    distributional SQL:")
			for _, line := range strings.Split(e.SQL, "\n") {
				fmt.Printf("      %s\n", line)
			}
		}
		fmt.Println()
	}
	if len(res.Explanations) == 0 {
		fmt.Println("no explanations found within the pattern size limit")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rex:", err)
	os.Exit(1)
}
