package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rex"
)

// TestRunSmoke drives the CLI end to end on the built-in sample KB.
func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-start", "brad_pitt", "-end", "angelina_jolie", "-k", "3"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "spouse") {
		t.Errorf("output missing the spouse explanation:\n%s", s)
	}
	if !strings.Contains(s, "knowledge base:") {
		t.Errorf("output missing the KB header:\n%s", s)
	}
}

// TestRunJSON checks that -json emits a decodable rex.Result.
func TestRunJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-start", "kate_winslet", "-end", "leonardo_dicaprio", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errOut.String())
	}
	var res rex.Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if res.Start != "kate_winslet" || len(res.Explanations) == 0 {
		t.Errorf("unexpected result: %+v", res)
	}
}

// TestRunErrors checks flag validation and unknown-entity exit codes.
func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h: exit code = %d, want 0", code)
	}
	if code := run([]string{"-start", "brad_pitt"}, &out, &errOut); code != 2 {
		t.Errorf("missing -end: exit code = %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-start", "brad_pitt", "-end", "ghost"}, &out, &errOut); code != 1 {
		t.Errorf("unknown entity: exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown entity") {
		t.Errorf("stderr = %q, want unknown entity", errOut.String())
	}
	if code := run([]string{"-start", "a", "-end", "b", "-measure", "bogus"}, &out, &errOut); code != 1 {
		t.Errorf("bad measure: exit code = %d, want 1", code)
	}
}
