package rex

import (
	"context"
	"strings"
	"testing"

	"rex/internal/fail"
)

// TestBatchExplainContainsPanics proves a panic inside one pair's query
// fails that pair alone: the other pairs of the batch still answer, and
// BatchExplain returns instead of hanging on a dead worker.
func TestBatchExplainContainsPanics(t *testing.T) {
	defer fail.Reset()
	ex := newTestExplainer(t, Options{Measure: "size"})
	pairs := []Pair{
		{"alice", "bob"},
		{"bob", "alice"},
		{"alice", "carol"},
	}
	// Panic on the second query only (ordering within the batch is the
	// submission order here because Concurrency=1 drains sequentially).
	n := 0
	fail.EnableFunc("explain.query", func() error {
		n++
		if n == 2 {
			panic("injected engine bug")
		}
		return nil
	})
	out := ex.BatchExplain(context.Background(), pairs, BatchOptions{Concurrency: 1})
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3", len(out))
	}
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "panic") {
		t.Fatalf("poisoned pair error = %v, want a panic-containment error", out[1].Err)
	}
	if out[1].Result != nil {
		t.Fatal("poisoned pair returned a result alongside its error")
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil {
			t.Fatalf("healthy pair %d failed: %v", i, out[i].Err)
		}
		if out[i].Result == nil {
			t.Fatalf("healthy pair %d has no result", i)
		}
	}
}

func newTestExplainer(t *testing.T, opt Options) *Explainer {
	t.Helper()
	k, err := ReadKB(strings.NewReader(storeBaseTSV))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExplainer(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}
