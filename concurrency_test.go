package rex

// Tests for the concurrent query surface: many goroutines against one
// knowledge base (run with -race), context cancellation aborting queries
// mid-flight, batch fan-out with per-pair error isolation, and the LRU
// result cache. See DESIGN.md for the concurrency model.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// samplePairs are well-connected pairs of the sample KB used across the
// concurrency tests.
var samplePairs = []Pair{
	{Start: "brad_pitt", End: "angelina_jolie"},
	{Start: "kate_winslet", End: "leonardo_dicaprio"},
	{Start: "tom_cruise", End: "nicole_kidman"},
	{Start: "brad_pitt", End: "george_clooney"},
}

// resultsEqual compares the rendered explanation lists of two results.
func resultsEqual(a, b *Result) bool {
	if len(a.Explanations) != len(b.Explanations) {
		return false
	}
	for i := range a.Explanations {
		ea, eb := a.Explanations[i], b.Explanations[i]
		if ea.Pattern != eb.Pattern || ea.Description != eb.Description ||
			ea.NumInstances != eb.NumInstances {
			return false
		}
	}
	return true
}

// TestConcurrentExplainContext hammers one explainer (and its cache)
// from many goroutines and checks every result against the serial
// reference. Run with -race to verify the read-path concurrency safety
// of the shared knowledge base.
func TestConcurrentExplainContext(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{Measure: "size+local-dist", TopK: 5, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Result, len(samplePairs))
	for i, p := range samplePairs {
		if want[i], err = ex.Explain(p.Start, p.End); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 16
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gr := 0; gr < goroutines; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (gr + r) % len(samplePairs)
				p := samplePairs[i]
				res, err := ex.ExplainContext(context.Background(), p.Start, p.End)
				if err != nil {
					errs <- err
					return
				}
				if !resultsEqual(res, want[i]) {
					errs <- errors.New("concurrent result differs from serial reference for " + p.Start + "/" + p.End)
					return
				}
			}
		}(gr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestParallelMatchesSerial checks that the parallel enumeration engine
// returns byte-identical rankings to the forced-serial engine.
func TestParallelMatchesSerial(t *testing.T) {
	kb := GenerateKB(GenOptions{Scale: 0.4, Seed: 11})
	serial, err := NewExplainer(kb, Options{Measure: "size+monocount", TopK: 10, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewExplainer(kb, Options{Measure: "size+monocount", TopK: 10, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	names := kb.Entities("actor")
	if len(names) < 8 {
		t.Fatal("generated KB too small")
	}
	checked := 0
	for i := 0; i+1 < len(names) && checked < 5; i += 2 {
		a, errA := serial.Explain(names[i], names[i+1])
		b, errB := parallel.Explain(names[i], names[i+1])
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error mismatch for (%s, %s): %v vs %v", names[i], names[i+1], errA, errB)
		}
		if errA != nil {
			continue
		}
		if len(a.Explanations) == 0 {
			continue
		}
		if !resultsEqual(a, b) {
			t.Errorf("parallel ranking differs from serial for (%s, %s)", names[i], names[i+1])
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no connected sampled pairs at this scale")
	}
}

// TestExplainContextPreCancelled checks that an already-cancelled context
// is rejected before any work happens.
func TestExplainContextPreCancelled(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ex.ExplainContext(ctx, "brad_pitt", "angelina_jolie")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExplainContextDeadline proves an expired deadline aborts a heavy
// query mid-flight and promptly: the workload below takes far longer than
// the 5ms deadline when run to completion (naive enumeration, pruning
// disabled, global measure over 100 sampled starts).
func TestExplainContextDeadline(t *testing.T) {
	kb := GenerateKB(GenOptions{Scale: 1, Seed: 3})
	ex, err := NewExplainer(kb, Options{
		Measure:        "global-dist",
		PathAlgorithm:  "naive",
		UnionAlgorithm: "basic",
		DisablePruning: true,
		GlobalSamples:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A densely connected pair: two actors sharing films exist at every
	// scale; pick the first pair that has any explanation at all using a
	// quick connectedness probe.
	names := kb.Entities("actor")
	var start, end string
	for i := 0; i < len(names) && start == ""; i++ {
		for j := i + 1; j < len(names) && j < i+20; j++ {
			if c, _ := kb.Connectedness(names[i], names[j], 4); c > 30 {
				start, end = names[i], names[j]
				break
			}
		}
	}
	if start == "" {
		t.Skip("no connected actor pair found at this scale")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = ex.ExplainContext(ctx, start, end)
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v after %v, want context.DeadlineExceeded", err, elapsed)
	}
	// The abort must be prompt: bounded-interval checks mean we allow a
	// generous margin over the 5ms deadline, but nowhere near the
	// multi-second full query.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestBatchExplain checks input-order results, per-pair error isolation
// and equality with serial queries.
func TestBatchExplain(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{Measure: "size", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []Pair{
		samplePairs[0],
		{Start: "ghost", End: "brad_pitt"}, // isolated failure
		samplePairs[1],
		{Start: "brad_pitt", End: "brad_pitt"}, // isolated failure
		samplePairs[2],
	}
	out := ex.BatchExplain(context.Background(), pairs, BatchOptions{Concurrency: 3})
	if len(out) != len(pairs) {
		t.Fatalf("got %d results, want %d", len(out), len(pairs))
	}
	for i, br := range out {
		if br.Pair != pairs[i] {
			t.Errorf("slot %d holds pair %+v, want %+v", i, br.Pair, pairs[i])
		}
	}
	if !errors.Is(out[1].Err, ErrUnknownEntity) {
		t.Errorf("pair 1: err = %v, want ErrUnknownEntity", out[1].Err)
	}
	if out[3].Err == nil {
		t.Error("pair 3: identical pair accepted")
	}
	for _, i := range []int{0, 2, 4} {
		if out[i].Err != nil {
			t.Errorf("pair %d: unexpected error %v", i, out[i].Err)
			continue
		}
		want, err := ex.Explain(pairs[i].Start, pairs[i].End)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(out[i].Result, want) {
			t.Errorf("pair %d: batch result differs from serial", i)
		}
	}

	// A cancelled batch context marks every pair with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out = ex.BatchExplain(ctx, pairs[:2], BatchOptions{})
	for i, br := range out {
		if !errors.Is(br.Err, context.Canceled) {
			t.Errorf("cancelled batch pair %d: err = %v", i, br.Err)
		}
	}
}

// TestResultCache checks hit/miss accounting, eviction order and that
// hits return the stored result.
func TestResultCache(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{Measure: "size", TopK: 5, CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ex.Explain(samplePairs[0].Start, samplePairs[0].End)
	if err != nil {
		t.Fatal(err)
	}
	r1again, err := ex.Explain(samplePairs[0].Start, samplePairs[0].End)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r1again {
		t.Error("cache hit did not return the stored result")
	}
	st := ex.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Capacity != 2 {
		t.Errorf("stats after hit = %+v", st)
	}

	// Fill past capacity: pair 0 was least recently used after querying
	// pairs 1 and 2, so it must be evicted and miss again.
	if _, err := ex.Explain(samplePairs[1].Start, samplePairs[1].End); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Explain(samplePairs[2].Start, samplePairs[2].End); err != nil {
		t.Fatal(err)
	}
	if st := ex.CacheStats(); st.Entries != 2 {
		t.Errorf("entries = %d, want capacity-bounded 2", st.Entries)
	} else if st.Evictions != 1 {
		t.Errorf("evictions = %d after one displacement, want 1", st.Evictions)
	}
	if _, err := ex.Explain(samplePairs[0].Start, samplePairs[0].End); err != nil {
		t.Fatal(err)
	}
	st = ex.CacheStats()
	if st.Hits != 1 || st.Misses != 4 {
		t.Errorf("stats after eviction = %+v, want 1 hit / 4 misses", st)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2 (pair 0 then pair 1 displaced)", st.Evictions)
	}

	// Uncached explainer reports zero stats.
	plain, err := NewExplainer(kb, Options{Measure: "size"})
	if err != nil {
		t.Fatal(err)
	}
	if st := plain.CacheStats(); st != (CacheStats{}) {
		t.Errorf("uncached stats = %+v, want zero", st)
	}
}

// TestPooledEnumerationDeterminismUnderBatch drives concurrent
// BatchExplain traffic over one explainer — every query checking out
// private enumeration state from the per-snapshot pool — and requires
// each pair's result to be byte-identical to its serial reference on
// every round. With -race this also proves pooled frontier, grouping
// and merge buffers are never shared between in-flight queries.
func TestPooledEnumerationDeterminismUnderBatch(t *testing.T) {
	kb := SampleKB()
	ex, err := NewExplainer(kb, Options{TopK: 10, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Serial references first (also warms the pools).
	want := make([]*Result, len(samplePairs))
	for i, p := range samplePairs {
		r, err := ex.Explain(p.Start, p.End)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		want[i] = r
	}
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		res := ex.BatchExplain(context.Background(), samplePairs, BatchOptions{Concurrency: 4})
		if len(res) != len(samplePairs) {
			t.Fatalf("round %d: %d results for %d pairs", round, len(res), len(samplePairs))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("round %d pair %v: %v", round, samplePairs[i], r.Err)
			}
			if !resultsEqual(r.Result, want[i]) {
				t.Fatalf("round %d pair %v: pooled result diverged from serial reference", round, samplePairs[i])
			}
		}
	}
}
