package rex

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"rex/internal/kb"
	"rex/internal/live"
)

// Anti-entropy source and sink APIs: a store can serve its own state to
// a lagging peer (SyncCheckpoint, WALTail) and install a peer's state
// into itself (InstallSnapshot). The serving tier exposes the source
// side over /admin/snapshot and /admin/wal; internal/sync drives the
// sink side.

// ErrBelowWALHorizon reports that a requested WAL position has been
// garbage-collected by a checkpoint: the peer must transfer the full
// checkpoint instead of a tail. It is the store-level alias of
// live.ErrBelowHorizon, so errors.Is works against either.
var ErrBelowWALHorizon = live.ErrBelowHorizon

// CheckpointHandle is a readable snapshot of the store's durable state:
// the newest binary checkpoint for a durable store, or the current
// in-memory graph serialized on demand for a store without a journal.
// The reader supports seeking, so HTTP range requests (resumed
// transfers) cost no re-serialization. Close releases the underlying
// file, if any.
type CheckpointHandle struct {
	// Reader holds the binary snapshot bytes (kb binary format).
	Reader io.ReadSeeker
	// Generation and Fingerprint identify the snapshot's version.
	Generation  uint64
	Fingerprint string
	// Size is the total byte length of the snapshot.
	Size int64

	closer io.Closer
}

// Close releases the handle's underlying file, if any.
func (h *CheckpointHandle) Close() error {
	if h.closer == nil {
		return nil
	}
	return h.closer.Close()
}

// SyncCheckpoint returns the newest checkpoint the store can serve to a
// catching-up peer. A durable store serves its newest on-disk
// checkpoint file (the open descriptor survives checkpoint GC, so a
// long transfer is never cut by a concurrent checkpoint); a store
// without a journal serializes the currently published graph instead.
func (s *Store) SyncCheckpoint() (*CheckpointHandle, error) {
	if s.journal != nil {
		f, gen, fp, err := s.journal.OpenCheckpoint()
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("rex: checkpoint stat: %w", err)
		}
		return &CheckpointHandle{
			Reader:      f,
			Generation:  gen,
			Fingerprint: fp,
			Size:        st.Size(),
			closer:      f,
		}, nil
	}
	cur := s.mgr.Current()
	var buf bytes.Buffer
	if err := cur.Graph.WriteBinary(&buf); err != nil {
		return nil, fmt.Errorf("rex: serializing snapshot: %w", err)
	}
	return &CheckpointHandle{
		Reader:      bytes.NewReader(buf.Bytes()),
		Generation:  cur.Generation,
		Fingerprint: cur.Fingerprint,
		Size:        int64(buf.Len()),
	}, nil
}

// WALTail returns the store's WAL records above generation from, in the
// on-disk frame encoding (see live.EncodeFrame), plus the record count.
// ErrBelowWALHorizon means the records were garbage-collected by a
// checkpoint and the peer needs SyncCheckpoint first. A store without a
// journal has no tail to serve: it returns an empty tail when the peer
// is current and ErrBelowWALHorizon otherwise. Prefer WALTailReader for
// serving a tail over the network — it streams instead of holding the
// whole tail in memory.
func (s *Store) WALTail(from uint64) (data []byte, records int, err error) {
	if s.journal != nil {
		return s.journal.TailSince(from)
	}
	if from >= s.mgr.Generation() {
		return nil, 0, nil
	}
	return nil, 0, ErrBelowWALHorizon
}

// WALTailReader is the streaming form of WALTail: it returns a reader
// over the frames above generation from plus their total byte size and
// record count, without materializing the tail. The caller must Close
// the reader. Error semantics match WALTail.
func (s *Store) WALTailReader(from uint64) (r io.ReadCloser, size int64, records int, err error) {
	if s.journal != nil {
		return s.journal.TailReaderSince(from)
	}
	if from >= s.mgr.Generation() {
		return io.NopCloser(bytes.NewReader(nil)), 0, 0, nil
	}
	return nil, 0, 0, ErrBelowWALHorizon
}

// InstallSnapshot reads a binary snapshot (as served by SyncCheckpoint
// on a peer) and publishes it at exactly generation gen, jumping the
// store's sequence forward to the fleet's numbering. gen must be above
// the current generation. A non-empty wantFingerprint is verified
// against the loaded graph before anything is published — a mismatch
// means the transfer corrupted or the peer diverged, and the active
// snapshot stays untouched. On a durable store the installed snapshot
// is checkpointed before it is published (a failure aborts the install,
// like ReloadFrom), so a crash right after the install recovers into
// the installed state, not behind it.
func (s *Store) InstallSnapshot(r io.Reader, gen uint64, wantFingerprint string) (SwapInfo, error) {
	return s.installSnapshot(r, gen, wantFingerprint, false)
}

// RepairSnapshot is InstallSnapshot with the generation-monotonicity
// requirement waived — the divergence-repair entry point. A store
// whose history forked (same generation as the fleet, different
// content) heals by adopting the fleet's checkpoint wholesale, which
// may sit at or below the forked local generation; the local sequence
// then moves backwards to the fleet's truthful position and the WAL
// tail replays forward from there. On a durable store the repair is
// checkpointed before publication, and that checkpoint garbage-
// collects the forked WAL and any forked higher-numbered checkpoint,
// so a later recovery cannot resurrect the divergent history.
func (s *Store) RepairSnapshot(r io.Reader, gen uint64, wantFingerprint string) (SwapInfo, error) {
	return s.installSnapshot(r, gen, wantFingerprint, true)
}

func (s *Store) installSnapshot(r io.Reader, gen uint64, wantFingerprint string, repair bool) (SwapInfo, error) {
	t0 := time.Now()
	g, err := kb.ReadBinary(r)
	if err != nil {
		return SwapInfo{}, fmt.Errorf("rex: reading snapshot: %w", err)
	}
	if wantFingerprint != "" && g.Fingerprint() != wantFingerprint {
		return SwapInfo{}, fmt.Errorf("rex: snapshot fingerprint %s does not match expected %s",
			g.Fingerprint(), wantFingerprint)
	}
	var commit live.CommitFunc
	if s.journal != nil {
		commit = func(cgen uint64, cg *kb.Graph) error {
			return s.journal.Checkpoint(cg, cgen)
		}
	}
	var snap *live.Snapshot
	if repair {
		snap, err = s.mgr.SwapGraphRepair(g, gen, commit)
	} else {
		snap, err = s.mgr.SwapGraphAt(g, gen, commit)
	}
	if err != nil {
		return SwapInfo{}, err
	}
	info := s.swapInfo(snap)
	info.Elapsed = time.Since(t0)
	s.notifySwap(info)
	return info, nil
}
