package rex

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite testdata/explain_goldens.json from current output")

// goldenPairs are the entity pairs the golden corpus ranks: well-connected
// sample-KB pairs plus pairs from a small generated KB, so both the curated
// and the synthetic schema shapes are pinned.
func goldenCases() []struct {
	kbName string
	kb     *KB
	pairs  [][2]string
} {
	gen := GenerateKB(GenOptions{Scale: 0.5, Seed: 7})
	return []struct {
		kbName string
		kb     *KB
		pairs  [][2]string
	}{
		{
			kbName: "sample",
			kb:     SampleKB(),
			pairs: [][2]string{
				{"brad_pitt", "angelina_jolie"},
				{"kate_winslet", "leonardo_dicaprio"},
				{"brad_pitt", "george_clooney"},
			},
		},
		{
			kbName: "generated",
			kb:     gen,
			pairs: [][2]string{
				{"actor_0000", "actor_0001"},
				{"actor_0002", "film_0010"},
			},
		},
	}
}

// goldenMeasures are the paper's eight Table 1 measures; ranked output
// under every one of them must stay byte-identical across perf refactors.
var goldenMeasures = []string{
	"size", "random-walk", "count", "monocount",
	"local-dist", "global-dist", "size+monocount", "size+local-dist",
}

// renderGolden flattens one ranked result into deterministic lines.
func renderGolden(res *Result) []string {
	var lines []string
	for i, e := range res.Explanations {
		lines = append(lines, fmt.Sprintf("#%d %s score=%v size=%d count=%d mono=%d",
			i, e.Pattern, e.Score, e.Size, e.NumInstances, e.Monocount))
		for _, in := range e.Instances {
			lines = append(lines, "  inst "+strings.Join(in.Bindings, ","))
		}
	}
	return lines
}

// TestExplainGoldens locks the fully-rendered ranked output (patterns,
// scores, instance lists, ordering) for every measure on both a curated
// and a generated knowledge base. Any enumeration, matching, measuring or
// ranking refactor must keep this byte-identical; regenerate deliberately
// with `go test -run TestExplainGoldens -update`.
func TestExplainGoldens(t *testing.T) {
	got := map[string][]string{}
	for _, c := range goldenCases() {
		for _, m := range goldenMeasures {
			ex, err := NewExplainer(c.kb, Options{Measure: m, TopK: 10, Seed: 42})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.kbName, m, err)
			}
			for _, p := range c.pairs {
				res, err := ex.Explain(p[0], p[1])
				if err != nil {
					t.Fatalf("%s/%s %v: %v", c.kbName, m, p, err)
				}
				key := fmt.Sprintf("%s/%s/%s->%s", c.kbName, m, p[0], p[1])
				got[key] = renderGolden(res)
			}
		}
	}

	path := filepath.Join("testdata", "explain_goldens.json")
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update): %v", err)
	}
	var want map[string][]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("golden case count: got %d, want %d", len(got), len(want))
	}
	for key, wl := range want {
		gl, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from current output", key)
			continue
		}
		if len(gl) != len(wl) {
			t.Errorf("%s: %d lines, want %d", key, len(gl), len(wl))
			continue
		}
		for i := range wl {
			if gl[i] != wl[i] {
				t.Errorf("%s line %d:\n got %q\nwant %q", key, i, gl[i], wl[i])
				break
			}
		}
	}
}
