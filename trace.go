package rex

import (
	"context"
	"time"

	"rex/internal/obs"
)

// QueryTrace is the per-query execution trace attached to Result when
// the query ran under a context from WithTrace: per-stage wall time and
// item counts (enumerate → match → measure → rank → merge, where match
// time nests inside measure), cache/dedup/pool-reuse flags, evaluator
// memo and walk-cache hit counters, and budget attribution naming the
// stage that exhausted MaxExpansions or Timeout ("enumerate:expansions",
// "rank:deadline", ...).
type QueryTrace = obs.Report

// BuildInfo identifies the running binary (Go version, VCS revision).
type BuildInfo = obs.BuildInfo

// Build returns the binary's build identification.
func Build() BuildInfo { return obs.Build() }

// WithTrace returns a context that carries a fresh query trace. A query
// run under the returned context records per-stage timings and attaches
// the rendered QueryTrace to Result.Trace. Tracing costs one small
// allocation per query plus O(stages) atomic updates; without WithTrace
// the instrumented hot path adds zero allocations and never reads the
// clock. Each traced query needs its own WithTrace context: reusing one
// across queries aggregates their stages into a single trace.
func WithTrace(ctx context.Context) context.Context {
	return obs.NewContext(ctx, obs.NewTrace())
}

// tracedResult attaches the rendered trace to a shallow copy of res, so
// shared results (cache, single-flight) are never mutated. With a nil
// trace it returns res unchanged.
func tracedResult(res *Result, tr *obs.Trace, t0 time.Time, b Budget) *Result {
	if tr == nil || res == nil {
		return res
	}
	rep := tr.Report()
	rep.TotalMS = float64(time.Since(t0)) / 1e6
	rep.BudgetMS = int64(b.Timeout / time.Millisecond)
	rep.BudgetExpansions = b.MaxExpansions
	cp := *res
	cp.Trace = rep
	return &cp
}
