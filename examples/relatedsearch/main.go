// Related-search panel: the paper's motivating application (Section 1).
//
// Run with:
//
//	go run ./examples/relatedsearch tom_cruise
//
// A search engine shows "related entities" next to results; REX's job is
// to annotate each suggestion with an explanation of *why* it is
// related. This example simulates the related-entity source with the
// knowledge base's own connectedness metric (the paper decouples the
// suggestion mechanism from explanation generation precisely so any
// source works), then explains every suggestion.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"rex"
)

func main() {
	seed := "tom_cruise"
	if len(os.Args) > 1 {
		seed = os.Args[1]
	}
	kb := rex.SampleKB()
	if !kb.HasEntity(seed) {
		log.Fatalf("entity %q not in the sample knowledge base", seed)
	}

	// Simulated related-entity engine: rank other people by
	// connectedness to the query entity — statistically related, but
	// with no explanation attached, just like a query-log correlation.
	type suggestion struct {
		name string
		conn int
	}
	var sugg []suggestion
	for _, typ := range []string{"actor", "director"} {
		for _, name := range kb.Entities(typ) {
			if name == seed {
				continue
			}
			c, err := kb.Connectedness(seed, name, 3)
			if err != nil || c == 0 {
				continue
			}
			sugg = append(sugg, suggestion{name, c})
		}
	}
	sort.Slice(sugg, func(i, j int) bool {
		if sugg[i].conn != sugg[j].conn {
			return sugg[i].conn > sugg[j].conn
		}
		return sugg[i].name < sugg[j].name
	})
	if len(sugg) > 5 {
		sugg = sugg[:5]
	}

	explainer, err := rex.NewExplainer(kb, rex.Options{
		Measure: "size+local-dist", TopK: 1, MaxInstancesPerExplanation: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("people related to %s:\n\n", seed)
	for _, s := range sugg {
		res, err := explainer.Explain(seed, s.name)
		if err != nil {
			log.Fatal(err)
		}
		why := "(no explanation within pattern size limit)"
		if len(res.Explanations) > 0 {
			why = res.Explanations[0].Description
		}
		fmt.Printf("  %-22s because: %s\n", s.name, why)
	}
}
