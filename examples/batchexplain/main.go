// Batch offline evaluation over a synthetic web-scale-shaped knowledge
// base.
//
// Run with:
//
//	go run ./examples/batchexplain
//
// Search engines precompute explanations for the related-entity pairs
// they serve. This example generates a synthetic entertainment knowledge
// base (the DESIGN.md substitution for the paper's DBpedia extraction),
// samples pairs bucketed by connectedness exactly like the paper's
// workload, and batch-explains them under two measures using the
// concurrent BatchExplain fan-out, reporting how often the rankings
// agree on the top explanation — a cheap proxy for the
// measure-effectiveness comparison of Table 1.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rex"
	"rex/internal/kbgen"
)

func main() {
	kb := rex.GenerateKB(rex.GenOptions{Scale: 0.5, Seed: 7})
	st := kb.Stats()
	fmt.Printf("synthetic KB: %d entities, %d relationships, %d labels\n\n",
		st.Nodes, st.Edges, st.Labels)

	fast, err := rex.NewExplainer(kb, rex.Options{Measure: "size+monocount", TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	rich, err := rex.NewExplainer(kb, rex.Options{Measure: "size+local-dist", TopK: 3})
	if err != nil {
		log.Fatal(err)
	}

	// The internal pair sampler is used directly here because this
	// example *is* the experiment pipeline; applications would bring
	// their own pair source. Both batches fan out over all cores, with a
	// per-pair timeout isolating any pathological pair.
	pairs := samplePairs(kb)
	ctx := context.Background()
	opts := rex.BatchOptions{PerPairTimeout: 30 * time.Second}
	t0 := time.Now()
	fastOut := fast.BatchExplain(ctx, pairs, opts)
	richOut := rich.BatchExplain(ctx, pairs, opts)
	elapsed := time.Since(t0)

	agree := 0
	for i, p := range pairs {
		if fastOut[i].Err != nil {
			log.Fatal(fastOut[i].Err)
		}
		if richOut[i].Err != nil {
			log.Fatal(richOut[i].Err)
		}
		r1, r2 := fastOut[i].Result, richOut[i].Result
		same := len(r1.Explanations) > 0 && len(r2.Explanations) > 0 &&
			r1.Explanations[0].Pattern == r2.Explanations[0].Pattern
		if same {
			agree++
		}
		top := "(none)"
		if len(r2.Explanations) > 0 {
			top = r2.Explanations[0].Pattern
		}
		marker := " "
		if !same {
			marker = "*"
		}
		fmt.Printf("%s %-28s %-28s top: %s\n", marker, p.Start, p.End, top)
	}
	fmt.Printf("\ntop-1 agreement between size+monocount and size+local-dist: %d/%d (batched in %v)\n",
		agree, len(pairs), elapsed.Round(time.Millisecond))
	fmt.Println("(* marks pairs where the distributional tie-break changed the winner)")
}

// samplePairs draws a small bucketed workload and resolves names.
func samplePairs(k *rex.KB) []rex.Pair {
	g := kbgen.Generate(kbgen.Options{Scale: 0.5, Seed: 7}) // same seed: same graph
	pairs := kbgen.SamplePairs(g, kbgen.PairOptions{PerBucket: 4, Seed: 8})
	out := make([]rex.Pair, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, rex.Pair{Start: g.NodeName(p.Start), End: g.NodeName(p.End)})
	}
	return out
}
