// Distributional rarity: a reproduction of the paper's Example 7.
//
// Run with:
//
//	go run ./examples/distribution
//
// Brad Pitt and Angelina Jolie co-star in exactly one film and are also
// married — both explanations have count 1, so aggregate measures cannot
// separate them. The local distribution can: many other actors co-star
// with Brad Pitt at least as often, but nobody else is his spouse. This
// example computes both local distributions and the resulting position
// measures, and prints the SQL the paper evaluates for the same job
// (Section 5.3.2).
package main

import (
	"fmt"
	"log"

	"rex"
)

func main() {
	kb := rex.SampleKB()
	explainer, err := rex.NewExplainer(kb, rex.Options{
		Measure: "local-dist",
		TopK:    10,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := explainer.Explain("brad_pitt", "angelina_jolie")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("explanations for (brad_pitt, angelina_jolie) by local-dist position:")
	fmt.Println("(position = how many other end entities beat this pair's count; 0 = rarest)")
	fmt.Println()
	for i, e := range res.Explanations {
		fmt.Printf("%d. position=%.0f count=%d  %s\n", i+1, -e.Score[0], e.NumInstances, e.Pattern)
	}

	// Show the SQL for the most and least rare explanations.
	if len(res.Explanations) > 1 {
		first := res.Explanations[0]
		last := res.Explanations[len(res.Explanations)-1]
		fmt.Printf("\nSQL computing the local distribution of the rarest explanation:\n%s\n", first.SQL)
		fmt.Printf("\n...and of the most common one:\n%s\n", last.SQL)
	}
}
