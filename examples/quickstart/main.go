// Quickstart: explain why two entities are related.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It loads the built-in sample entertainment knowledge base (a curated
// slice mirroring the paper's Figure 3) and prints the top relationship
// explanations for (brad_pitt, angelina_jolie) under the measure the
// paper's user study found most effective, size+local-dist.
package main

import (
	"fmt"
	"log"
	"strings"

	"rex"
)

func main() {
	kb := rex.SampleKB()
	st := kb.Stats()
	fmt.Printf("sample knowledge base: %d entities, %d relationships\n\n", st.Nodes, st.Edges)

	explainer, err := rex.NewExplainer(kb, rex.Options{
		Measure:                    "size+local-dist",
		TopK:                       5,
		MaxInstancesPerExplanation: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := explainer.Explain("brad_pitt", "angelina_jolie")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("why are %s and %s related?\n\n", res.Start, res.End)
	for i, e := range res.Explanations {
		shape := "non-path"
		if e.IsPath {
			shape = "path"
		}
		fmt.Printf("%d. %s (%s, %d instance(s))\n", i+1, e.Pattern, shape, e.NumInstances)
		for _, in := range e.Instances {
			fmt.Printf("   e.g. %s\n", strings.Join(in.Bindings, " / "))
		}
	}
}
